//! De Bruijn graph simplification: tip clipping and bubble popping.
//!
//! Frequency filtering (`min_count`) removes isolated error k-mers, but
//! errors near read ends create *tips* (short dead-end paths) and errors in
//! read middles create *bubbles* (parallel paths between the same
//! endpoints). Velvet's "tour bus" popularized removing both before
//! traversal; we implement the same transformations as k-mer-set filters so
//! the result is again an ordinary [`DeBruijnGraph`].

use std::collections::HashSet;

use crate::debruijn::DeBruijnGraph;
use crate::kmer::Kmer;

/// Counters from one simplification pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimplifyStats {
    /// Edges removed as parts of tips.
    pub tip_edges_removed: usize,
    /// Edges removed as inferior bubble branches.
    pub bubble_edges_removed: usize,
}

/// Graph simplifier.
///
/// # Examples
///
/// ```
/// use pim_genome::simplify::Simplifier;
///
/// let s = Simplifier::new(4);
/// assert_eq!(s.max_tip_edges(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Simplifier {
    max_tip_edges: usize,
}

impl Simplifier {
    /// Creates a simplifier removing tips of at most `max_tip_edges` edges
    /// (Velvet uses 2k; pass what fits your k).
    pub fn new(max_tip_edges: usize) -> Self {
        Simplifier { max_tip_edges }
    }

    /// The tip-length bound.
    pub fn max_tip_edges(&self) -> usize {
        self.max_tip_edges
    }

    /// Runs tip clipping then bubble popping, returning the simplified
    /// graph and the removal counters.
    pub fn simplify(&self, graph: &DeBruijnGraph) -> (DeBruijnGraph, SimplifyStats) {
        let mut stats = SimplifyStats::default();
        let mut removed: HashSet<u64> = HashSet::new();
        stats.tip_edges_removed = self.collect_tips(graph, &mut removed);
        stats.bubble_edges_removed = self.collect_bubbles(graph, &mut removed);
        let survivors: Vec<(Kmer, u64)> = all_edges(graph)
            .into_iter()
            .filter(|(kmer, _)| !removed.contains(&kmer.packed()))
            .collect();
        let mut out = DeBruijnGraph::from_kmers(graph.k(), std::iter::empty());
        for (kmer, mult) in survivors {
            out.add_kmer(kmer, mult);
        }
        (out, stats)
    }

    /// Tips: maximal chains ending at a dead end, at most `max_tip_edges`
    /// long, hanging off a node that has a better-supported alternative.
    fn collect_tips(&self, graph: &DeBruijnGraph, removed: &mut HashSet<u64>) -> usize {
        let n = graph.node_count();
        let mut count = 0;
        // Outgoing tips: start where a branch forks (out ≥ 2), follow each
        // branch; if it dead-ends within the bound, clip it when a sibling
        // branch has strictly higher multiplicity.
        for v in 0..n {
            if graph.out_degree(v) < 2 {
                continue;
            }
            let best = graph.out_edges(v).iter().map(|e| e.multiplicity).max().unwrap_or(0);
            for e in graph.out_edges(v) {
                if e.multiplicity == best {
                    continue;
                }
                if let Some(chain) = self.dead_end_chain_forward(graph, e.to, e.kmer) {
                    for k in chain {
                        if removed.insert(k.packed()) {
                            count += 1;
                        }
                    }
                }
            }
        }
        // Incoming tips: mirror case — a chain from a dead-start (in 0)
        // into a join node (in ≥ 2) with a better-supported sibling.
        for v in 0..n {
            if graph.in_degree(v) < 2 {
                continue;
            }
            let incoming: Vec<_> = incoming_edges(graph, v);
            let best = incoming.iter().map(|(_, e)| e.multiplicity).max().unwrap_or(0);
            for (src, e) in incoming {
                if e.multiplicity == best {
                    continue;
                }
                if let Some(chain) = self.dead_start_chain_backward(graph, src, e.kmer) {
                    for k in chain {
                        if removed.insert(k.packed()) {
                            count += 1;
                        }
                    }
                }
            }
        }
        count
    }

    /// Follows a 1-in-1-out chain forward from `start`; returns the chain's
    /// k-mers if it dead-ends within the bound.
    fn dead_end_chain_forward(
        &self,
        graph: &DeBruijnGraph,
        start: usize,
        first: Kmer,
    ) -> Option<Vec<Kmer>> {
        let mut chain = vec![first];
        let mut v = start;
        for _ in 0..self.max_tip_edges {
            if graph.out_degree(v) == 0 {
                return Some(chain);
            }
            if graph.out_degree(v) != 1 || graph.in_degree(v) != 1 {
                return None; // rejoins the graph — not a tip
            }
            let e = &graph.out_edges(v)[0];
            if e.to == v {
                return None; // self-loop (homopolymer k-mer): never dead-ends
            }
            chain.push(e.kmer);
            v = e.to;
        }
        if graph.out_degree(v) == 0 {
            Some(chain)
        } else {
            None
        }
    }

    /// Follows a 1-in-1-out chain backward from `start`; returns the
    /// chain's k-mers if it dead-starts within the bound.
    fn dead_start_chain_backward(
        &self,
        graph: &DeBruijnGraph,
        start: usize,
        first: Kmer,
    ) -> Option<Vec<Kmer>> {
        let mut chain = vec![first];
        let mut v = start;
        for _ in 0..self.max_tip_edges {
            if graph.in_degree(v) == 0 {
                return Some(chain);
            }
            if graph.in_degree(v) != 1 || graph.out_degree(v) != 1 {
                return None;
            }
            // The in-degree counter and the adjacency scan are maintained
            // separately; a multigraph shape the counter miscounts (or a
            // caller-built graph) must not panic the walk.
            let (src, e) = incoming_edges(graph, v).pop()?;
            if src == v {
                return None; // self-loop: the chain never dead-starts
            }
            chain.push(e.kmer);
            v = src;
        }
        if graph.in_degree(v) == 0 {
            Some(chain)
        } else {
            None
        }
    }

    /// Bubbles: two branches from a fork that reconverge at the same node
    /// through 1-in-1-out interiors; the lower-multiplicity branch is
    /// removed.
    fn collect_bubbles(&self, graph: &DeBruijnGraph, removed: &mut HashSet<u64>) -> usize {
        let n = graph.node_count();
        let mut count = 0;
        for v in 0..n {
            if graph.out_degree(v) != 2 {
                continue;
            }
            let paths: Vec<Option<(usize, Vec<Kmer>, u64)>> = graph
                .out_edges(v)
                .iter()
                .map(|e| self.simple_path_forward(graph, e.to, e.kmer))
                .collect();
            let (Some(a), Some(b)) = (&paths[0], &paths[1]) else { continue };
            if a.0 != b.0 {
                continue; // branches do not reconverge
            }
            // Drop the weaker branch (by minimum edge multiplicity).
            let weaker = if a.2 <= b.2 { a } else { b };
            for k in &weaker.1 {
                if removed.insert(k.packed()) {
                    count += 1;
                }
            }
        }
        count
    }

    /// Follows 1-in-1-out nodes from `start` up to the bound; returns
    /// `(end_node, edge k-mers, min multiplicity)` when the path exits into
    /// a join node (in ≥ 2).
    fn simple_path_forward(
        &self,
        graph: &DeBruijnGraph,
        start: usize,
        first: Kmer,
    ) -> Option<(usize, Vec<Kmer>, u64)> {
        let mut chain = vec![first];
        let mut min_mult = edge_multiplicity(graph, &first);
        let mut v = start;
        for _ in 0..=self.max_tip_edges {
            if graph.in_degree(v) >= 2 {
                return Some((v, chain, min_mult));
            }
            if graph.out_degree(v) != 1 || graph.in_degree(v) != 1 {
                return None;
            }
            let e = &graph.out_edges(v)[0];
            if e.to == v {
                return None; // self-loop: not a simple bubble interior
            }
            chain.push(e.kmer);
            min_mult = min_mult.min(e.multiplicity);
            v = e.to;
        }
        None
    }
}

/// All `(k-mer, multiplicity)` edges of a graph.
fn all_edges(graph: &DeBruijnGraph) -> Vec<(Kmer, u64)> {
    (0..graph.node_count())
        .flat_map(|v| graph.out_edges(v).iter().map(|e| (e.kmer, e.multiplicity)))
        .collect()
}

/// All `(source node, edge)` pairs entering `v`.
fn incoming_edges(graph: &DeBruijnGraph, v: usize) -> Vec<(usize, crate::debruijn::Edge)> {
    (0..graph.node_count())
        .flat_map(|u| graph.out_edges(u).iter().filter(|e| e.to == v).map(move |e| (u, *e)))
        .collect()
}

fn edge_multiplicity(graph: &DeBruijnGraph, kmer: &Kmer) -> u64 {
    all_edges(graph).into_iter().find(|(k, _)| k == kmer).map(|(_, m)| m).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_table::KmerCounter;
    use crate::sequence::DnaSequence;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Counts a sequence `times` times into a counter.
    fn count_times(c: &mut KmerCounter, s: &DnaSequence, times: usize) {
        for _ in 0..times {
            c.count_sequence(s).unwrap();
        }
    }

    #[test]
    fn clips_a_low_coverage_tip() {
        // Strong backbone sequenced 5×; an error near a read end adds a
        // weak dead-end branch sequenced once.
        let mut rng = ChaCha8Rng::seed_from_u64(60);
        let backbone = DnaSequence::random(&mut rng, 200);
        let k = 11;
        let mut c = KmerCounter::new(k).unwrap();
        count_times(&mut c, &backbone, 5);
        // Tip: take a window mid-backbone and corrupt its tail bases.
        let mut tip = backbone.subsequence(80, 2 * k);
        for pos in (k + 3)..tip.len() {
            tip.set_base(pos, tip.get(pos).complement());
        }
        c.count_sequence(&tip).unwrap();
        let graph = DeBruijnGraph::from_counter(&c, 1);
        assert!(!graph.has_eulerian_path(), "tip should add a dead end");
        let (clean, stats) = Simplifier::new(2 * k).simplify(&graph);
        assert!(stats.tip_edges_removed > 0, "no tip clipped");
        // The backbone survives intact.
        let backbone_kmers = backbone.len() - k + 1;
        assert!(clean.edge_count() >= backbone_kmers);
        assert!(clean.edge_count() < graph.edge_count());
    }

    #[test]
    fn pops_a_bubble() {
        // Two variants of the same region: the true one sequenced 5×, an
        // SNP variant once — classic bubble.
        let mut rng = ChaCha8Rng::seed_from_u64(61);
        let region = DnaSequence::random(&mut rng, 120);
        let k = 11;
        let mut variant = region.clone();
        variant.set_base(60, variant.get(60).complement());
        let mut c = KmerCounter::new(k).unwrap();
        count_times(&mut c, &region, 5);
        c.count_sequence(&variant).unwrap();
        let graph = DeBruijnGraph::from_counter(&c, 1);
        let (clean, stats) = Simplifier::new(2 * k).simplify(&graph);
        assert!(stats.bubble_edges_removed > 0, "no bubble popped");
        // The surviving graph spells a single path again.
        assert!(clean.has_eulerian_path(), "bubble not fully removed");
        assert_eq!(clean.edge_count(), region.len() - k + 1);
    }

    #[test]
    fn clean_graph_is_untouched() {
        let mut rng = ChaCha8Rng::seed_from_u64(62);
        let seq = DnaSequence::random(&mut rng, 300);
        let mut c = KmerCounter::new(11).unwrap();
        count_times(&mut c, &seq, 3);
        let graph = DeBruijnGraph::from_counter(&c, 1);
        let (clean, stats) = Simplifier::new(22).simplify(&graph);
        assert_eq!(stats, SimplifyStats::default());
        assert_eq!(clean.edge_count(), graph.edge_count());
    }

    #[test]
    fn self_loops_do_not_panic_or_hang_the_walks() {
        // AAAA's prefix and suffix are both AAA: a self-loop. TTTT likewise.
        // Mixing loops with real chains exercises both chain walkers around
        // a node whose single in/out edge is the loop itself.
        let kmers = ["AAAA", "AAAT", "AATC", "TTTT", "GTTT", "CGTT", "AATG"];
        let g = DeBruijnGraph::from_kmers(4, kmers.iter().map(|s| s.parse().unwrap()));
        let (clean, _) = Simplifier::new(8).simplify(&g);
        assert!(clean.edge_count() <= g.edge_count());
    }

    #[test]
    fn parallel_edges_do_not_panic() {
        // The same k-mer added twice creates parallel edges (a multigraph
        // shape the fault-injected scan path can produce).
        let mut g = DeBruijnGraph::from_kmers(4, std::iter::empty::<Kmer>());
        for s in ["ACGT", "ACGT", "CGTA", "CGTA", "GTAC", "ACGG", "CGGT"] {
            g.add_kmer(s.parse().unwrap(), 1);
        }
        let (clean, _) = Simplifier::new(8).simplify(&g);
        assert!(clean.edge_count() <= g.edge_count());
    }

    #[test]
    fn long_branches_are_not_tips() {
        // A branch longer than the bound must survive (it is real sequence,
        // e.g. a haplotype, not an error).
        let mut rng = ChaCha8Rng::seed_from_u64(63);
        let backbone = DnaSequence::random(&mut rng, 150);
        let k = 9;
        let mut c = KmerCounter::new(k).unwrap();
        count_times(&mut c, &backbone, 4);
        let mut long_branch = backbone.subsequence(40, 100);
        for pos in (k + 2)..long_branch.len() {
            long_branch.set_base(pos, long_branch.get(pos).complement());
        }
        c.count_sequence(&long_branch).unwrap();
        let graph = DeBruijnGraph::from_counter(&c, 1);
        let (clean, _) = Simplifier::new(6).simplify(&graph); // bound ≪ branch
                                                              // The long branch's k-mers survive.
        assert!(clean.edge_count() > backbone.len() - k + 1);
    }
}
