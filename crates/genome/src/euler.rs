//! `Traverse(G)`: Eulerian path extraction.
//!
//! The paper names the Fleury algorithm in Fig. 5; Fleury avoids bridges at
//! every step and is O(E²). We implement it for fidelity, plus the standard
//! Hierholzer algorithm (O(E)) that any production assembler would use — an
//! ablation bench compares the two. Both operate per weakly-connected
//! component and decompose non-Eulerian components into a minimal set of
//! edge-disjoint trails.

use crate::debruijn::DeBruijnGraph;

/// Which traversal algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EulerAlgorithm {
    /// Hierholzer's linear-time algorithm (default).
    #[default]
    Hierholzer,
    /// Fleury's bridge-avoiding algorithm, as the paper's Fig. 5 names.
    Fleury,
}

/// One trail: a sequence of node indices; consecutive nodes are joined by
/// one edge, so a trail of `n` nodes spells `n − 1` k-mers.
pub type Trail = Vec<usize>;

/// Extracts edge-disjoint trails covering every edge of the graph.
///
/// Each weakly-connected component yields one trail when it is Eulerian
/// (≤ 2 unbalanced nodes); otherwise it is decomposed greedily into several
/// trails, each starting at a node with surplus out-degree.
///
/// The decomposition is *canonical*: starts are visited in node-label order
/// and each node's out-edges are consumed in k-mer order, so the output
/// depends only on the graph's edge multiset — never on node numbering or
/// edge insertion order. Two graphs built from the same k-mers in different
/// orders (e.g. a hash-table scan vs. a read stream) yield identical trails.
///
/// # Examples
///
/// ```
/// use pim_genome::{debruijn::DeBruijnGraph, euler::{eulerian_trails, EulerAlgorithm}};
///
/// let g = DeBruijnGraph::from_kmers(
///     4,
///     ["CGTG", "GTGC", "TGCT", "GCTT"].iter().map(|s| s.parse().unwrap()),
/// );
/// let trails = eulerian_trails(&g, EulerAlgorithm::Hierholzer);
/// assert_eq!(trails.len(), 1);
/// assert_eq!(trails[0].len(), 5); // 4 edges → 5 nodes
/// ```
pub fn eulerian_trails(graph: &DeBruijnGraph, algorithm: EulerAlgorithm) -> Vec<Trail> {
    match algorithm {
        EulerAlgorithm::Hierholzer => hierholzer(graph),
        EulerAlgorithm::Fleury => fleury(graph),
    }
}

/// Node indices sorted by (k−1)-mer label: the canonical visiting order.
fn node_order(graph: &DeBruijnGraph) -> Vec<usize> {
    let mut order: Vec<usize> = (0..graph.node_count()).collect();
    order.sort_by_key(|&i| graph.node(i).packed());
    order
}

/// Per-node permutations of the out-edge lists, sorted by edge k-mer: the
/// canonical consumption order. Indexed as `edge_order[v][cursor]` →
/// position in `graph.out_edges(v)`.
fn edge_order(graph: &DeBruijnGraph) -> Vec<Vec<usize>> {
    (0..graph.node_count())
        .map(|v| {
            let edges = graph.out_edges(v);
            let mut order: Vec<usize> = (0..edges.len()).collect();
            order.sort_by_key(|&i| edges[i].kmer.packed());
            order
        })
        .collect()
}

/// Hierholzer's algorithm generalized to trail decomposition.
///
/// Pass 1 peels one greedy (splice-free) trail per unit of surplus
/// out-degree; each such walk necessarily ends at a deficit node, and the
/// residual graph is then balanced. Pass 2 extracts the remaining Eulerian
/// circuits with classic stack-based Hierholzer (whose cycle splicing is
/// only valid on balanced graphs — running it directly on an unbalanced
/// component would stitch non-adjacent nodes together). Circuits sharing a
/// node with an existing trail are spliced into it to maximize trail
/// length, mirroring what the contig stage wants.
fn hierholzer(graph: &DeBruijnGraph) -> Vec<Trail> {
    let n = graph.node_count();
    let order = node_order(graph);
    let edges = edge_order(graph);
    let mut next_edge = vec![0usize; n];
    let mut remaining_out: Vec<usize> = (0..n).map(|i| graph.out_degree(i)).collect();
    let mut remaining_in: Vec<usize> = (0..n).map(|i| graph.in_degree(i)).collect();
    let mut trails: Vec<Trail> = Vec::new();

    // Pass 1: one greedy trail per unit of residual surplus out-degree.
    for &start in &order {
        while remaining_out[start] > remaining_in[start] {
            trails.push(greedy_walk(
                graph,
                start,
                &edges,
                &mut next_edge,
                &mut remaining_out,
                &mut remaining_in,
            ));
        }
    }

    // Pass 2: residual graph is balanced — extract circuits and splice.
    for &start in &order {
        while remaining_out[start] > 0 {
            let circuit = walk_from(graph, start, &edges, &mut next_edge, &mut remaining_out);
            match trails
                .iter_mut()
                .find_map(|t| t.iter().position(|&v| v == circuit[0]).map(|pos| (t, pos)))
            {
                Some((trail, pos)) => {
                    // Insert the circuit (minus its duplicated first node)
                    // after `pos`.
                    let tail: Vec<usize> = circuit[1..].to_vec();
                    trail.splice(pos + 1..pos + 1, tail);
                }
                None => trails.push(circuit),
            }
        }
    }
    trails
}

/// Greedy trail: follow unused out-edges until stuck; no splicing.
fn greedy_walk(
    graph: &DeBruijnGraph,
    start: usize,
    edge_order: &[Vec<usize>],
    next_edge: &mut [usize],
    remaining_out: &mut [usize],
    remaining_in: &mut [usize],
) -> Trail {
    let mut trail = vec![start];
    let mut v = start;
    while remaining_out[v] > 0 {
        let e = &graph.out_edges(v)[edge_order[v][next_edge[v]]];
        next_edge[v] += 1;
        remaining_out[v] -= 1;
        remaining_in[e.to] -= 1;
        trail.push(e.to);
        v = e.to;
    }
    trail
}

/// One Hierholzer walk: greedy trail from `start` with cycle splicing.
fn walk_from(
    graph: &DeBruijnGraph,
    start: usize,
    edge_order: &[Vec<usize>],
    next_edge: &mut [usize],
    remaining_out: &mut [usize],
) -> Trail {
    // Iterative Hierholzer with an explicit stack; produces the trail in
    // reverse, then flips it.
    let mut stack = vec![start];
    let mut trail = Vec::new();
    while let Some(&v) = stack.last() {
        if remaining_out[v] == 0 {
            trail.push(v);
            stack.pop();
        } else {
            let e = &graph.out_edges(v)[edge_order[v][next_edge[v]]];
            next_edge[v] += 1;
            remaining_out[v] -= 1;
            stack.push(e.to);
        }
    }
    trail.reverse();
    trail
}

/// Fleury's algorithm: never cross a bridge unless forced.
fn fleury(graph: &DeBruijnGraph) -> Vec<Trail> {
    let n = graph.node_count();
    // Mutable residual multigraph as adjacency lists of (to, used flag).
    let mut used: Vec<Vec<bool>> = (0..n).map(|i| vec![false; graph.out_degree(i)]).collect();
    let mut remaining_out: Vec<usize> = (0..n).map(|i| graph.out_degree(i)).collect();
    let mut remaining_in: Vec<usize> = (0..n).map(|i| graph.in_degree(i)).collect();
    let mut trails = Vec::new();
    let order = node_order(graph);
    let edges = edge_order(graph);

    let mut starts: Vec<usize> = graph.start_candidates();
    starts.sort_by_key(|&i| graph.node(i).packed());
    starts.extend(order.iter().copied());

    for &start in &starts {
        while remaining_out[start] > 0 {
            let mut trail = vec![start];
            let mut v = start;
            while remaining_out[v] > 0 {
                let choice =
                    choose_non_bridge(graph, v, &edges, &used, &remaining_out, &remaining_in);
                used[v][choice] = true;
                remaining_out[v] -= 1;
                let to = graph.out_edges(v)[choice].to;
                remaining_in[to] -= 1;
                trail.push(to);
                v = to;
            }
            trails.push(trail);
        }
    }
    trails
}

/// Picks an unused out-edge of `v` that is not a bridge in the residual
/// graph, falling back to a bridge when every edge is one. Candidates are
/// tried in canonical (k-mer-sorted) order so ties break deterministically.
fn choose_non_bridge(
    graph: &DeBruijnGraph,
    v: usize,
    edge_order: &[Vec<usize>],
    used: &[Vec<bool>],
    remaining_out: &[usize],
    _remaining_in: &[usize],
) -> usize {
    let candidates: Vec<usize> = edge_order[v].iter().copied().filter(|&i| !used[v][i]).collect();
    if candidates.len() == 1 {
        return candidates[0];
    }
    for &c in &candidates {
        if !disconnects(graph, v, c, used, remaining_out) {
            return c;
        }
    }
    candidates[0]
}

/// Would taking edge `(v, idx)` strand residual edges of `v`'s component?
/// Classic Fleury reachability check in the residual graph, treated as
/// undirected (adequate for trail decomposition of near-Eulerian de Bruijn
/// components).
fn disconnects(
    graph: &DeBruijnGraph,
    v: usize,
    idx: usize,
    used: &[Vec<bool>],
    remaining_out: &[usize],
) -> bool {
    let to = graph.out_edges(v)[idx].to;
    // Count residual edges reachable from `to` with the candidate edge
    // removed; if some residual edge of v's residual component becomes
    // unreachable, the edge is a bridge.
    let n = graph.node_count();
    let mut undirected: Vec<Vec<usize>> = vec![Vec::new(); n];
    for u in 0..n {
        for (i, e) in graph.out_edges(u).iter().enumerate() {
            if used[u][i] || (u == v && i == idx) {
                continue;
            }
            undirected[u].push(e.to);
            undirected[e.to].push(u);
        }
    }
    let mut seen = vec![false; n];
    let mut stack = vec![to];
    seen[to] = true;
    while let Some(x) = stack.pop() {
        for &y in &undirected[x] {
            if !seen[y] {
                seen[y] = true;
                stack.push(y);
            }
        }
    }
    // Any node with residual out-edges (other than the edge we just took)
    // that is unreachable ⇒ bridge.
    (0..n).any(|u| {
        let residual = remaining_out[u] - usize::from(u == v);
        residual > 0 && !seen[u]
    })
}

/// Checks that a set of trails uses every edge of `graph` exactly once.
pub fn trails_cover_all_edges(graph: &DeBruijnGraph, trails: &[Trail]) -> bool {
    use std::collections::HashMap;
    // Multiset of edges in the graph.
    let mut need: HashMap<(usize, usize), isize> = HashMap::new();
    for v in 0..graph.node_count() {
        for e in graph.out_edges(v) {
            *need.entry((v, e.to)).or_insert(0) += 1;
        }
    }
    for t in trails {
        for w in t.windows(2) {
            *need.entry((w[0], w[1])).or_insert(0) -= 1;
        }
    }
    need.values().all(|&c| c == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_table::KmerCounter;
    use crate::sequence::DnaSequence;

    fn graph_of(s: &str, k: usize) -> DeBruijnGraph {
        let seq: DnaSequence = s.parse().unwrap();
        let mut c = KmerCounter::new(k).unwrap();
        c.count_sequence(&seq).unwrap();
        DeBruijnGraph::from_counter(&c, 1)
    }

    #[test]
    fn single_trail_for_linear_string() {
        let g = graph_of("ATTGCCGGAACT", 4);
        for alg in [EulerAlgorithm::Hierholzer, EulerAlgorithm::Fleury] {
            let trails = eulerian_trails(&g, alg);
            assert_eq!(trails.len(), 1, "{alg:?}");
            assert!(trails_cover_all_edges(&g, &trails), "{alg:?}");
            assert_eq!(trails[0].len(), g.edge_count() + 1);
        }
    }

    #[test]
    fn cycle_graph_yields_closed_trail() {
        // ACGTAC: 3-mers wrap: AC→CG→GT→TA→AC (distinct 3-mers form a cycle
        // over 2-mer nodes).
        let g = graph_of("ACGTACG", 3);
        let trails = eulerian_trails(&g, EulerAlgorithm::Hierholzer);
        assert!(trails_cover_all_edges(&g, &trails));
        assert_eq!(trails.len(), 1);
        let t = &trails[0];
        assert_eq!(t.first(), t.last()); // closed
    }

    #[test]
    fn disconnected_components_give_multiple_trails() {
        let mut c = KmerCounter::new(4).unwrap();
        c.count_sequence(&"AAAAACC".parse().unwrap()).unwrap();
        c.count_sequence(&"GGTGGTT".parse().unwrap()).unwrap();
        let g = DeBruijnGraph::from_counter(&c, 1);
        for alg in [EulerAlgorithm::Hierholzer, EulerAlgorithm::Fleury] {
            let trails = eulerian_trails(&g, alg);
            assert!(trails.len() >= 2, "{alg:?}");
            assert!(trails_cover_all_edges(&g, &trails), "{alg:?}");
        }
    }

    #[test]
    fn branching_graph_still_covers_all_edges() {
        // A repeat creates a branch; decomposition must still cover all
        // edges exactly once.
        let g = graph_of("ACGTACGTTACGG", 4);
        for alg in [EulerAlgorithm::Hierholzer, EulerAlgorithm::Fleury] {
            let trails = eulerian_trails(&g, alg);
            assert!(trails_cover_all_edges(&g, &trails), "{alg:?}");
        }
    }

    #[test]
    fn both_algorithms_agree_on_edge_coverage() {
        let g = graph_of("CGTGCGTGCTTACGGATCCGATCAAGGTT", 5);
        let h = eulerian_trails(&g, EulerAlgorithm::Hierholzer);
        let f = eulerian_trails(&g, EulerAlgorithm::Fleury);
        assert!(trails_cover_all_edges(&g, &h));
        assert!(trails_cover_all_edges(&g, &f));
        let h_edges: usize = h.iter().map(|t| t.len() - 1).sum();
        let f_edges: usize = f.iter().map(|t| t.len() - 1).sum();
        assert_eq!(h_edges, f_edges);
        assert_eq!(h_edges, g.edge_count());
    }

    #[test]
    fn empty_graph_yields_no_trails() {
        let g = DeBruijnGraph::from_kmers(4, std::iter::empty());
        assert!(eulerian_trails(&g, EulerAlgorithm::Hierholzer).is_empty());
        assert!(eulerian_trails(&g, EulerAlgorithm::Fleury).is_empty());
    }
}
