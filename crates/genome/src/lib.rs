#![warn(missing_docs)]
//! # pim-genome
//!
//! A from-scratch genome-assembly toolkit implementing the algorithm stack
//! of the PIM-Assembler paper (Fig. 5): short-read analysis, k-mer hash-table
//! construction, bidirected de Bruijn graph construction, and Eulerian
//! traversal into contigs — plus the scaffolding stage the paper defers to
//! future work.
//!
//! The toolkit is pure software; the `pim-assembler` crate maps these same
//! algorithms onto the processing-in-DRAM platform and uses this crate as
//! its correctness oracle.
//!
//! * [`base`] / [`sequence`] — 2-bit packed DNA (T=00, G=01, A=10, C=11, the
//!   encoding of Fig. 7),
//! * [`fasta`] — minimal FASTA I/O for interchange,
//! * [`reads`] — uniform short-read simulator with an optional substitution
//!   error model (the paper samples 45.7 M × 101 bp reads from chr14),
//! * [`kmer`] — packed k-mers (k ≤ 32) and iterators,
//! * [`hash_table`] — the `Hashmap(S, k)` procedure of Fig. 5b as an
//!   open-addressing counting table,
//! * [`debruijn`] — the `DeBruijn(Hashmap, k)` graph-construction procedure,
//! * [`euler`] — `Traverse(G)`: Fleury (as the paper names) and Hierholzer
//!   Eulerian-path algorithms,
//! * [`contig`] / [`stats`] — contig spelling and assembly metrics (N50 …),
//! * [`assemble`] — the end-to-end software assembler,
//! * [`scaffold`] — paired-read scaffolding (stage 3, the paper's future
//!   work, implemented here as an extension).
//!
//! ## Example
//!
//! ```
//! use pim_genome::{assemble::{SoftwareAssembler, AssemblyConfig}, reads::ReadSimulator,
//!                  sequence::DnaSequence};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let genome = DnaSequence::random(&mut rng, 2000);
//! let reads = ReadSimulator::new(80, 30.0).simulate(&genome, &mut rng);
//! let asm = SoftwareAssembler::new(AssemblyConfig::new(21)).assemble(&reads);
//! assert!(asm.stats.total_length >= 1900); // genome essentially recovered
//! ```

pub mod align;
pub mod assemble;
pub mod base;
pub mod bloom;
pub mod contig;
pub mod correction;
pub mod coverage;
pub mod debruijn;
pub mod error;
pub mod euler;
pub mod fasta;
pub mod fastq;
pub mod hash_table;
pub mod kmer;
pub mod reads;
pub mod scaffold;
pub mod sequence;
pub mod simplify;
pub mod simulate;
pub mod stats;

pub use assemble::{Assembly, AssemblyConfig, SoftwareAssembler};
pub use base::DnaBase;
pub use contig::Contig;
pub use debruijn::DeBruijnGraph;
pub use error::{GenomeError, Result};
pub use hash_table::KmerCounter;
pub use kmer::Kmer;
pub use reads::{Read, ReadSimulator};
pub use sequence::DnaSequence;
pub use stats::AssemblyStats;
