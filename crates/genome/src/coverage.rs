//! Per-position coverage tracking.
//!
//! The read simulator claims uniform sampling; assemblies fail where depth
//! drops to zero. This module computes the depth profile of a read set over
//! its reference (using the simulator's ground-truth origins) and the
//! summary statistics that predict assembly completeness.

use crate::reads::Read;

/// Depth-of-coverage profile over a reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageProfile {
    depth: Vec<u32>,
}

impl CoverageProfile {
    /// Builds the profile from reads with ground-truth origins over a
    /// reference of `genome_len` bases.
    ///
    /// # Panics
    ///
    /// Panics if a read extends past the reference.
    pub fn from_reads(genome_len: usize, reads: &[Read]) -> Self {
        let mut depth = vec![0u32; genome_len];
        for r in reads {
            assert!(r.origin + r.seq.len() <= genome_len, "read {} out of reference", r.id);
            for d in depth.iter_mut().skip(r.origin).take(r.seq.len()) {
                *d += 1;
            }
        }
        CoverageProfile { depth }
    }

    /// Depth at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn depth_at(&self, i: usize) -> u32 {
        self.depth[i]
    }

    /// Mean depth.
    pub fn mean(&self) -> f64 {
        if self.depth.is_empty() {
            return 0.0;
        }
        self.depth.iter().map(|&d| d as f64).sum::<f64>() / self.depth.len() as f64
    }

    /// Fraction of positions with depth ≥ `min`.
    pub fn breadth(&self, min: u32) -> f64 {
        if self.depth.is_empty() {
            return 0.0;
        }
        self.depth.iter().filter(|&&d| d >= min).count() as f64 / self.depth.len() as f64
    }

    /// Positions with zero coverage (assembly must break there).
    pub fn zero_positions(&self) -> usize {
        self.depth.iter().filter(|&&d| d == 0).count()
    }

    /// Contiguous zero-coverage gaps as `(start, len)`.
    pub fn gaps(&self) -> Vec<(usize, usize)> {
        let mut gaps = Vec::new();
        let mut start = None;
        for (i, &d) in self.depth.iter().enumerate() {
            match (d == 0, start) {
                (true, None) => start = Some(i),
                (false, Some(s)) => {
                    gaps.push((s, i - s));
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            gaps.push((s, self.depth.len() - s));
        }
        gaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reads::ReadSimulator;
    use crate::sequence::DnaSequence;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn read(id: usize, origin: usize, len: usize) -> Read {
        let mut rng = ChaCha8Rng::seed_from_u64(id as u64);
        Read { id, seq: DnaSequence::random(&mut rng, len), origin }
    }

    #[test]
    fn depth_counts_overlaps() {
        let reads = vec![read(0, 0, 10), read(1, 5, 10)];
        let p = CoverageProfile::from_reads(20, &reads);
        assert_eq!(p.depth_at(0), 1);
        assert_eq!(p.depth_at(7), 2);
        assert_eq!(p.depth_at(14), 1);
        assert_eq!(p.depth_at(15), 0);
        assert!((p.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gaps_are_located() {
        let reads = vec![read(0, 0, 5), read(1, 10, 5)];
        let p = CoverageProfile::from_reads(20, &reads);
        assert_eq!(p.gaps(), vec![(5, 5), (15, 5)]);
        assert_eq!(p.zero_positions(), 10);
        assert!((p.breadth(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn simulator_coverage_is_near_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let genome = DnaSequence::random(&mut rng, 5000);
        let sim = ReadSimulator::new(100, 30.0);
        let reads = sim.simulate(&genome, &mut rng);
        let p = CoverageProfile::from_reads(genome.len(), &reads);
        // Interior mean near 30×, breadth ≈ 1 at depth ≥ 5.
        assert!((25.0..35.0).contains(&p.mean()), "mean {}", p.mean());
        assert!(p.breadth(5) > 0.98, "breadth {}", p.breadth(5));
        // Edge effect exists: first/last positions are lighter than interior.
        let interior = p.depth_at(2500) as f64;
        let edge = p.depth_at(0) as f64;
        assert!(edge < interior, "edge {edge} vs interior {interior}");
    }

    #[test]
    fn empty_profile() {
        let p = CoverageProfile::from_reads(0, &[]);
        assert_eq!(p.mean(), 0.0);
        assert_eq!(p.breadth(1), 0.0);
        assert!(p.gaps().is_empty());
    }
}
