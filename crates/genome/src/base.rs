//! Single DNA bases and their 2-bit encoding.
//!
//! PIM-Assembler packs bases two bits each so that one 256-bit DRAM row
//! stores up to 128 bp. The bit assignment follows the table in Fig. 7:
//! `T = 00`, `G = 01`, `A = 10`, `C = 11`.

use std::fmt;

use crate::error::{GenomeError, Result};

/// One DNA base.
///
/// # Examples
///
/// ```
/// use pim_genome::base::DnaBase;
///
/// assert_eq!(DnaBase::A.to_char(), 'A');
/// assert_eq!(DnaBase::A.code(), 0b10); // Fig. 7 encoding
/// assert_eq!(DnaBase::A.complement(), DnaBase::T);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DnaBase {
    /// Thymine (`00`).
    T,
    /// Guanine (`01`).
    G,
    /// Adenine (`10`).
    A,
    /// Cytosine (`11`).
    C,
}

impl DnaBase {
    /// All four bases in code order (`T, G, A, C`).
    pub const ALL: [DnaBase; 4] = [DnaBase::T, DnaBase::G, DnaBase::A, DnaBase::C];

    /// The 2-bit code of this base (Fig. 7).
    pub fn code(&self) -> u8 {
        match self {
            DnaBase::T => 0b00,
            DnaBase::G => 0b01,
            DnaBase::A => 0b10,
            DnaBase::C => 0b11,
        }
    }

    /// Reconstructs a base from its 2-bit code.
    ///
    /// # Panics
    ///
    /// Panics if `code > 3`.
    pub fn from_code(code: u8) -> Self {
        match code {
            0b00 => DnaBase::T,
            0b01 => DnaBase::G,
            0b10 => DnaBase::A,
            0b11 => DnaBase::C,
            other => panic!("invalid 2-bit base code {other}"),
        }
    }

    /// Parses a base character (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::InvalidBase`] for characters outside
    /// `ACGTacgt`; `position` is reported as 0 (callers with context use
    /// [`DnaBase::try_from_char_at`]).
    pub fn try_from_char(ch: char) -> Result<Self> {
        DnaBase::try_from_char_at(ch, 0)
    }

    /// Parses a base character, reporting `position` on error.
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::InvalidBase`] for characters outside `ACGTacgt`.
    pub fn try_from_char_at(ch: char, position: usize) -> Result<Self> {
        match ch.to_ascii_uppercase() {
            'A' => Ok(DnaBase::A),
            'C' => Ok(DnaBase::C),
            'G' => Ok(DnaBase::G),
            'T' => Ok(DnaBase::T),
            _ => Err(GenomeError::InvalidBase { ch, position }),
        }
    }

    /// The base character.
    pub fn to_char(&self) -> char {
        match self {
            DnaBase::A => 'A',
            DnaBase::C => 'C',
            DnaBase::G => 'G',
            DnaBase::T => 'T',
        }
    }

    /// Watson-Crick complement.
    pub fn complement(&self) -> Self {
        match self {
            DnaBase::A => DnaBase::T,
            DnaBase::T => DnaBase::A,
            DnaBase::C => DnaBase::G,
            DnaBase::G => DnaBase::C,
        }
    }
}

/// Whether `ch` is an IUPAC ambiguity code (`N`, `R`, `Y`, `S`, `W`, `K`,
/// `M`, `B`, `D`, `H`, `V`, case-insensitive) — a position the sequencer
/// could not call as a single base. The 2-bit pipeline cannot represent
/// these, so the FASTA/FASTQ readers split reads at runs of them instead
/// of rejecting the whole file.
pub fn is_ambiguity_code(ch: char) -> bool {
    matches!(
        ch.to_ascii_uppercase(),
        'N' | 'R' | 'Y' | 'S' | 'W' | 'K' | 'M' | 'B' | 'D' | 'H' | 'V'
    )
}

impl fmt::Display for DnaBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl TryFrom<char> for DnaBase {
    type Error = GenomeError;

    fn try_from(ch: char) -> Result<Self> {
        DnaBase::try_from_char(ch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_encoding() {
        assert_eq!(DnaBase::T.code(), 0b00);
        assert_eq!(DnaBase::G.code(), 0b01);
        assert_eq!(DnaBase::A.code(), 0b10);
        assert_eq!(DnaBase::C.code(), 0b11);
    }

    #[test]
    fn code_roundtrip() {
        for b in DnaBase::ALL {
            assert_eq!(DnaBase::from_code(b.code()), b);
        }
    }

    #[test]
    fn char_roundtrip_case_insensitive() {
        for (lo, b) in [('a', DnaBase::A), ('c', DnaBase::C), ('g', DnaBase::G), ('t', DnaBase::T)]
        {
            assert_eq!(DnaBase::try_from_char(lo).unwrap(), b);
            assert_eq!(DnaBase::try_from_char(lo.to_ascii_uppercase()).unwrap(), b);
            assert_eq!(b.to_char(), lo.to_ascii_uppercase());
        }
    }

    #[test]
    fn complement_is_involution() {
        for b in DnaBase::ALL {
            assert_eq!(b.complement().complement(), b);
            assert_ne!(b.complement(), b);
        }
    }

    #[test]
    fn invalid_chars_rejected_with_position() {
        let err = DnaBase::try_from_char_at('N', 17).unwrap_err();
        assert_eq!(err, GenomeError::InvalidBase { ch: 'N', position: 17 });
    }

    #[test]
    #[should_panic(expected = "invalid 2-bit base code")]
    fn from_code_bounds() {
        DnaBase::from_code(4);
    }

    #[test]
    fn ambiguity_codes_recognized() {
        for ch in "NRYSWKMBDHVnryswkmbdhv".chars() {
            assert!(is_ambiguity_code(ch), "{ch} is an IUPAC ambiguity code");
        }
        for ch in "ACGTacgt*-. 7".chars() {
            assert!(!is_ambiguity_code(ch), "{ch} is not an ambiguity code");
        }
    }
}
