//! Short-read simulation.
//!
//! The paper creates its evaluation reads "by randomly sampling the
//! chromosome extracted from the NCBI genome databases": 45,711,162 reads of
//! length 101 from human chromosome-14 (§IV *Setup*). [`ReadSimulator`]
//! reproduces that process on any reference — uniform start positions, fixed
//! read length, optional substitution errors — so a scaled reference yields
//! a workload with identical per-read statistics.

use rand::Rng;

use crate::base::DnaBase;
use crate::sequence::DnaSequence;

/// One short read.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Read {
    /// Sequential read id.
    pub id: usize,
    /// The base sequence.
    pub seq: DnaSequence,
    /// Ground-truth start position in the reference (kept for evaluation;
    /// a real sequencer does not provide it).
    pub origin: usize,
}

/// Uniform short-read sampler.
///
/// # Examples
///
/// ```
/// use pim_genome::{reads::ReadSimulator, sequence::DnaSequence};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let genome = DnaSequence::random(&mut rng, 5000);
/// let reads = ReadSimulator::new(101, 20.0).simulate(&genome, &mut rng);
/// assert!(reads.iter().all(|r| r.seq.len() == 101));
/// // ~20× coverage.
/// let bases: usize = reads.iter().map(|r| r.seq.len()).sum();
/// assert!(bases >= 19 * 5000 && bases <= 21 * 5000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadSimulator {
    read_len: usize,
    coverage: f64,
    error_rate: f64,
}

impl ReadSimulator {
    /// Creates a simulator producing reads of `read_len` bases at the given
    /// mean `coverage` (total read bases / reference bases), error-free.
    ///
    /// # Panics
    ///
    /// Panics if `read_len == 0` or `coverage <= 0`.
    pub fn new(read_len: usize, coverage: f64) -> Self {
        assert!(read_len > 0, "read length must be positive");
        assert!(coverage > 0.0, "coverage must be positive");
        ReadSimulator { read_len, coverage, error_rate: 0.0 }
    }

    /// The paper's configuration: 101 bp reads. Coverage follows from the
    /// paper's counts: 45,711,162 reads × 101 bp over the ≈87.7 Mbp of
    /// non-gap chromosome-14 sequence ≈ 52×.
    pub fn paper_chr14() -> Self {
        ReadSimulator::new(101, 52.0)
    }

    /// Sets a per-base substitution error probability.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1)`.
    pub fn with_error_rate(mut self, rate: f64) -> Self {
        assert!((0.0..1.0).contains(&rate), "error rate must be in [0, 1)");
        self.error_rate = rate;
        self
    }

    /// Read length in bases.
    pub fn read_len(&self) -> usize {
        self.read_len
    }

    /// Target mean coverage.
    pub fn coverage(&self) -> f64 {
        self.coverage
    }

    /// Number of reads needed for the target coverage of `genome_len`.
    pub fn read_count(&self, genome_len: usize) -> usize {
        ((self.coverage * genome_len as f64) / self.read_len as f64).ceil() as usize
    }

    /// Samples reads from `genome`.
    ///
    /// # Panics
    ///
    /// Panics if the genome is shorter than the read length.
    pub fn simulate<R: Rng + ?Sized>(&self, genome: &DnaSequence, rng: &mut R) -> Vec<Read> {
        assert!(genome.len() >= self.read_len, "genome shorter than read length");
        let n = self.read_count(genome.len());
        let max_start = genome.len() - self.read_len;
        (0..n)
            .map(|id| {
                let origin = rng.gen_range(0..=max_start);
                let mut seq = genome.subsequence(origin, self.read_len);
                if self.error_rate > 0.0 {
                    seq = inject_errors(&seq, self.error_rate, rng);
                }
                Read { id, seq, origin }
            })
            .collect()
    }
}

/// Applies i.i.d. substitution errors to a sequence.
fn inject_errors<R: Rng + ?Sized>(seq: &DnaSequence, rate: f64, rng: &mut R) -> DnaSequence {
    seq.iter()
        .map(|b| {
            if rng.gen_bool(rate) {
                // Substitute with one of the three other bases.
                let mut alt = DnaBase::from_code(rng.gen_range(0..4));
                while alt == b {
                    alt = DnaBase::from_code(rng.gen_range(0..4));
                }
                alt
            } else {
                b
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    #[test]
    fn reads_match_reference_at_origin() {
        let mut r = rng();
        let genome = DnaSequence::random(&mut r, 2000);
        let reads = ReadSimulator::new(50, 5.0).simulate(&genome, &mut r);
        for read in &reads {
            assert_eq!(read.seq, genome.subsequence(read.origin, 50));
        }
    }

    #[test]
    fn read_count_tracks_coverage() {
        let sim = ReadSimulator::new(101, 52.0);
        // Paper scale: 45.7 M reads over ~88.8 Mbp.
        let n = sim.read_count(88_800_000);
        assert!((45_000_000..=46_500_000).contains(&n), "n={n}");
    }

    #[test]
    fn errors_change_about_rate_fraction_of_bases() {
        let mut r = rng();
        let genome = DnaSequence::random(&mut r, 1000);
        let clean = ReadSimulator::new(100, 30.0);
        let noisy = clean.with_error_rate(0.05);
        let reads = noisy.simulate(&genome, &mut r);
        let mut diffs = 0usize;
        let mut total = 0usize;
        for read in &reads {
            let truth = genome.subsequence(read.origin, 100);
            diffs += read.seq.iter().zip(truth.iter()).filter(|(a, b)| a != b).count();
            total += 100;
        }
        let rate = diffs as f64 / total as f64;
        assert!((0.03..0.07).contains(&rate), "observed error rate {rate}");
    }

    #[test]
    fn deterministic_per_seed() {
        let genome = DnaSequence::random(&mut rng(), 500);
        let a = ReadSimulator::new(40, 3.0).simulate(&genome, &mut ChaCha8Rng::seed_from_u64(5));
        let b = ReadSimulator::new(40, 3.0).simulate(&genome, &mut ChaCha8Rng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn paper_preset() {
        let sim = ReadSimulator::paper_chr14();
        assert_eq!(sim.read_len(), 101);
        assert!(sim.coverage() > 50.0);
    }

    #[test]
    #[should_panic(expected = "genome shorter")]
    fn rejects_tiny_genome() {
        let genome = DnaSequence::random(&mut rng(), 10);
        ReadSimulator::new(101, 5.0).simulate(&genome, &mut rng());
    }
}
