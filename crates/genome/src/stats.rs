//! Assembly quality metrics.

use std::collections::HashSet;
use std::fmt;

use crate::contig::Contig;
use crate::kmer::KmerIter;
use crate::sequence::DnaSequence;

/// Summary statistics of a contig set.
///
/// # Examples
///
/// ```
/// use pim_genome::{contig::Contig, stats::AssemblyStats};
///
/// let contigs = vec![
///     Contig::new("ACGTACGT".parse()?),
///     Contig::new("TTGG".parse()?),
/// ];
/// let s = AssemblyStats::from_contigs(&contigs);
/// assert_eq!(s.num_contigs, 2);
/// assert_eq!(s.total_length, 12);
/// assert_eq!(s.n50, 8);
/// # Ok::<(), pim_genome::GenomeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AssemblyStats {
    /// Number of contigs.
    pub num_contigs: usize,
    /// Sum of contig lengths (bp).
    pub total_length: usize,
    /// Length of the longest contig (bp).
    pub longest: usize,
    /// N50: the contig length at which half the total assembly length is
    /// contained in contigs at least that long.
    pub n50: usize,
}

impl AssemblyStats {
    /// Computes the statistics of a contig set.
    pub fn from_contigs(contigs: &[Contig]) -> Self {
        let mut lengths: Vec<usize> = contigs.iter().map(Contig::len).collect();
        lengths.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = lengths.iter().sum();
        let mut acc = 0usize;
        let mut n50 = 0usize;
        for &l in &lengths {
            acc += l;
            if acc * 2 >= total {
                n50 = l;
                break;
            }
        }
        AssemblyStats {
            num_contigs: contigs.len(),
            total_length: total,
            longest: lengths.first().copied().unwrap_or(0),
            n50,
        }
    }
}

impl fmt::Display for AssemblyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "contigs={} total={}bp longest={}bp N50={}bp",
            self.num_contigs, self.total_length, self.longest, self.n50
        )
    }
}

/// Generalized Nx: the contig length at which `x` percent of the total
/// assembly length is contained in contigs at least that long
/// (`nx(contigs, 50.0)` is the classic N50; `nx(contigs, 90.0)` the
/// stricter N90).
///
/// Returns 0 for an empty contig set.
///
/// # Panics
///
/// Panics if `x` is outside `(0, 100]`.
pub fn nx(contigs: &[Contig], x: f64) -> usize {
    assert!(x > 0.0 && x <= 100.0, "x must be in (0, 100]");
    let mut lengths: Vec<usize> = contigs.iter().map(Contig::len).collect();
    lengths.sort_unstable_by(|a, b| b.cmp(a));
    let total: usize = lengths.iter().sum();
    let threshold = total as f64 * x / 100.0;
    let mut acc = 0.0;
    for &l in &lengths {
        acc += l as f64;
        if acc >= threshold {
            return l;
        }
    }
    0
}

/// Lx: the minimum number of contigs containing `x` percent of the
/// assembly (`lx(contigs, 50.0)` is the classic L50).
///
/// # Panics
///
/// Panics if `x` is outside `(0, 100]`.
pub fn lx(contigs: &[Contig], x: f64) -> usize {
    assert!(x > 0.0 && x <= 100.0, "x must be in (0, 100]");
    let mut lengths: Vec<usize> = contigs.iter().map(Contig::len).collect();
    lengths.sort_unstable_by(|a, b| b.cmp(a));
    let total: usize = lengths.iter().sum();
    let threshold = total as f64 * x / 100.0;
    let mut acc = 0.0;
    for (i, &l) in lengths.iter().enumerate() {
        acc += l as f64;
        if acc >= threshold {
            return i + 1;
        }
    }
    0
}

/// Fraction of the reference's k-mers present in the contig set — a fast
/// alignment-free proxy for genome fraction.
///
/// Returns 1.0 for an empty reference shorter than k.
pub fn genome_fraction(reference: &DnaSequence, contigs: &[Contig], k: usize) -> f64 {
    let ref_kmers: Vec<u64> = match KmerIter::new(reference, k) {
        Ok(it) => it.map(|km| km.packed()).collect(),
        Err(_) => return 1.0,
    };
    if ref_kmers.is_empty() {
        return 1.0;
    }
    let mut have: HashSet<u64> = HashSet::new();
    for c in contigs {
        if let Ok(it) = KmerIter::new(c.sequence(), k) {
            have.extend(it.map(|km| km.packed()));
        }
    }
    let covered = ref_kmers.iter().filter(|p| have.contains(p)).count();
    covered as f64 / ref_kmers.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contig(s: &str) -> Contig {
        Contig::new(s.parse().unwrap())
    }

    #[test]
    fn n50_definition() {
        // Lengths 10, 6, 4, 2 → total 22, half 11; 10+6 = 16 ≥ 11 → N50 = 6.
        let contigs = vec![contig("AAAAAAAAAA"), contig("CCCCCC"), contig("GGGG"), contig("TT")];
        let s = AssemblyStats::from_contigs(&contigs);
        assert_eq!(s.n50, 6);
        assert_eq!(s.longest, 10);
        assert_eq!(s.total_length, 22);
    }

    #[test]
    fn empty_set() {
        let s = AssemblyStats::from_contigs(&[]);
        assert_eq!(s.num_contigs, 0);
        assert_eq!(s.n50, 0);
        assert_eq!(s.longest, 0);
    }

    #[test]
    fn genome_fraction_full_recovery() {
        let reference: DnaSequence = "ACGTTGCAAC".parse().unwrap();
        let contigs = vec![Contig::new(reference.clone())];
        assert_eq!(genome_fraction(&reference, &contigs, 4), 1.0);
    }

    #[test]
    fn genome_fraction_partial() {
        let reference: DnaSequence = "AAAACCCC".parse().unwrap();
        let contigs = vec![contig("AAAA")];
        let f = genome_fraction(&reference, &contigs, 4);
        assert!(f > 0.0 && f < 1.0, "{f}");
    }

    #[test]
    fn genome_fraction_no_contigs_is_zero() {
        let reference: DnaSequence = "ACGTACGT".parse().unwrap();
        assert_eq!(genome_fraction(&reference, &[], 4), 0.0);
    }

    #[test]
    fn display_mentions_n50() {
        let s = AssemblyStats::from_contigs(&[contig("ACGT")]);
        assert!(s.to_string().contains("N50=4bp"));
    }

    #[test]
    fn nx_generalizes_n50() {
        let contigs = vec![
            contig("AAAAAAAAAA"), // 10
            contig("CCCCCC"),     // 6
            contig("GGGG"),       // 4
            contig("TT"),         // 2
        ];
        assert_eq!(nx(&contigs, 50.0), AssemblyStats::from_contigs(&contigs).n50);
        // N90: 10+6+4 = 20 ≥ 0.9·22 = 19.8 → 4.
        assert_eq!(nx(&contigs, 90.0), 4);
        assert_eq!(nx(&contigs, 100.0), 2);
        assert_eq!(nx(&[], 50.0), 0);
    }

    #[test]
    fn lx_counts_contigs() {
        let contigs = vec![contig("AAAAAAAAAA"), contig("CCCCCC"), contig("GGGG"), contig("TT")];
        assert_eq!(lx(&contigs, 50.0), 2); // 10+6 = 16 ≥ 11
        assert_eq!(lx(&contigs, 90.0), 3);
        assert_eq!(lx(&[], 50.0), 0);
    }

    #[test]
    #[should_panic(expected = "x must be")]
    fn nx_rejects_bad_percent() {
        let _ = nx(&[], 0.0);
    }
}
