//! The end-to-end software assembler (stages 1–2 of Fig. 5a).
//!
//! This is the reference implementation the PIM pipeline is validated
//! against: k-mer analysis → de Bruijn construction → traversal → contigs.
//! Two traversal policies are provided: the paper's Eulerian-path traversal
//! and the unitig (maximal non-branching path) policy every production
//! de-Bruijn assembler uses; on repeat-free references both recover the
//! genome, and on repetitive ones unitigs degrade more gracefully.

use crate::contig::Contig;
use crate::debruijn::DeBruijnGraph;
use crate::error::Result;
use crate::euler::{eulerian_trails, EulerAlgorithm};
use crate::hash_table::KmerCounter;
use crate::reads::Read;
use crate::sequence::DnaSequence;
use crate::stats::AssemblyStats;

/// Contig-extraction policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Traversal {
    /// Eulerian trails (the paper's `Traverse(G)` with Fleury; we default
    /// to the equivalent linear-time Hierholzer).
    #[default]
    EulerPath,
    /// Eulerian trails via the literal Fleury algorithm.
    EulerPathFleury,
    /// Maximal non-branching paths.
    Unitigs,
}

/// Assembler configuration.
///
/// # Examples
///
/// ```
/// use pim_genome::assemble::AssemblyConfig;
///
/// let cfg = AssemblyConfig::new(21).with_min_count(2);
/// assert_eq!(cfg.k, 21);
/// assert_eq!(cfg.min_count, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AssemblyConfig {
    /// k-mer length (the paper evaluates 16, 22, 26, 32).
    pub k: usize,
    /// Minimum k-mer frequency kept (error filtering).
    pub min_count: u64,
    /// Contig-extraction policy.
    pub traversal: Traversal,
    /// Graph simplification (tip clipping + bubble popping) with the given
    /// maximum tip length in edges; `None` disables it.
    pub simplify_tips: Option<usize>,
}

impl AssemblyConfig {
    /// Creates a configuration with `min_count = 1`, Euler traversal, no
    /// simplification.
    pub fn new(k: usize) -> Self {
        AssemblyConfig { k, min_count: 1, traversal: Traversal::EulerPath, simplify_tips: None }
    }

    /// Sets the minimum k-mer count.
    pub fn with_min_count(mut self, min_count: u64) -> Self {
        self.min_count = min_count;
        self
    }

    /// Sets the traversal policy.
    pub fn with_traversal(mut self, traversal: Traversal) -> Self {
        self.traversal = traversal;
        self
    }

    /// Enables graph simplification with the given tip bound (Velvet-style
    /// `2k` is a good default).
    pub fn with_simplification(mut self, max_tip_edges: usize) -> Self {
        self.simplify_tips = Some(max_tip_edges);
        self
    }
}

/// The result of an assembly run, with stage-level size information the
/// performance models consume.
#[derive(Debug, Clone)]
pub struct Assembly {
    /// Assembled contigs (length ≥ k only; shorter spellings are noise).
    pub contigs: Vec<Contig>,
    /// Contig statistics.
    pub stats: AssemblyStats,
    /// Distinct k-mers after filtering.
    pub distinct_kmers: usize,
    /// Total k-mers processed (hash-table insertions).
    pub total_kmers: u64,
    /// Hash probes performed during counting.
    pub hash_probes: u64,
    /// de Bruijn node count.
    pub graph_nodes: usize,
    /// de Bruijn edge count.
    pub graph_edges: usize,
    /// Number of trails/unitigs walked.
    pub trails: usize,
}

/// The reference software assembler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftwareAssembler {
    config: AssemblyConfig,
}

impl SoftwareAssembler {
    /// Creates an assembler with the given configuration.
    pub fn new(config: AssemblyConfig) -> Self {
        SoftwareAssembler { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AssemblyConfig {
        &self.config
    }

    /// Assembles a read set.
    ///
    /// # Panics
    ///
    /// Panics if the configured k is invalid (checked at table creation).
    pub fn assemble(&self, reads: &[Read]) -> Assembly {
        let counter = self.count(reads).expect("k validated by AssemblyConfig");
        self.assemble_from_counter(&counter)
    }

    /// Stage 1 alone: the k-mer hash table of a read set.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GenomeError::UnsupportedK`] for invalid k.
    pub fn count(&self, reads: &[Read]) -> Result<KmerCounter> {
        let mut counter = KmerCounter::new(self.config.k)?;
        for r in reads {
            counter.count_sequence(&r.seq)?;
        }
        Ok(counter)
    }

    /// Stages 2 onward, from an existing hash table.
    pub fn assemble_from_counter(&self, counter: &KmerCounter) -> Assembly {
        let mut graph = DeBruijnGraph::from_counter(counter, self.config.min_count);
        if let Some(max_tip) = self.config.simplify_tips {
            let (simplified, _) = crate::simplify::Simplifier::new(max_tip).simplify(&graph);
            graph = simplified;
        }
        let trails = match self.config.traversal {
            Traversal::EulerPath => eulerian_trails(&graph, EulerAlgorithm::Hierholzer),
            Traversal::EulerPathFleury => eulerian_trails(&graph, EulerAlgorithm::Fleury),
            Traversal::Unitigs => unitigs(&graph),
        };
        let k = self.config.k;
        let contigs: Vec<Contig> =
            trails.iter().map(|t| Contig::from_trail(&graph, t)).filter(|c| c.len() >= k).collect();
        Assembly {
            stats: AssemblyStats::from_contigs(&contigs),
            contigs,
            distinct_kmers: counter.entries_with_min_count(self.config.min_count).count(),
            total_kmers: counter.total(),
            hash_probes: counter.probes(),
            graph_nodes: graph.node_count(),
            graph_edges: graph.edge_count(),
            trails: trails.len(),
        }
    }

    /// Convenience: assemble a single sequence's k-mer spectrum (useful in
    /// tests where reads are not needed).
    pub fn assemble_sequence(&self, seq: &DnaSequence) -> Result<Assembly> {
        let mut counter = KmerCounter::new(self.config.k)?;
        counter.count_sequence(seq)?;
        Ok(self.assemble_from_counter(&counter))
    }
}

/// Maximal non-branching paths.
fn unitigs(graph: &DeBruijnGraph) -> Vec<Vec<usize>> {
    let n = graph.node_count();
    let one_in_one_out = |v: usize| graph.in_degree(v) == 1 && graph.out_degree(v) == 1;
    let mut used = vec![false; n]; // interior 1-in-1-out nodes consumed
    let mut paths = Vec::new();

    // Paths starting at branch nodes.
    for v in 0..n {
        if one_in_one_out(v) {
            continue;
        }
        for e in graph.out_edges(v) {
            let mut path = vec![v, e.to];
            let mut w = e.to;
            while one_in_one_out(w) && !used[w] {
                used[w] = true;
                w = graph.out_edges(w)[0].to;
                path.push(w);
            }
            paths.push(path);
        }
    }
    // Isolated cycles of 1-in-1-out nodes.
    for v in 0..n {
        if !one_in_one_out(v) || used[v] {
            continue;
        }
        let mut path = vec![v];
        used[v] = true;
        let mut w = graph.out_edges(v)[0].to;
        while w != v {
            used[w] = true;
            path.push(w);
            w = graph.out_edges(w)[0].to;
        }
        path.push(v);
        paths.push(path);
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reads::ReadSimulator;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_genome(seed: u64, len: usize) -> DnaSequence {
        DnaSequence::random(&mut ChaCha8Rng::seed_from_u64(seed), len)
    }

    #[test]
    fn perfect_spectrum_reconstructs_genome() {
        // A random genome with unique (k−1)-mers yields one Euler trail
        // that spells the genome exactly.
        let genome = random_genome(3, 1500);
        let asm =
            SoftwareAssembler::new(AssemblyConfig::new(17)).assemble_sequence(&genome).unwrap();
        assert_eq!(asm.contigs.len(), 1, "stats: {}", asm.stats);
        assert_eq!(asm.contigs[0].sequence(), &genome);
    }

    #[test]
    fn reads_reconstruct_genome() {
        let genome = random_genome(4, 2000);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let reads = ReadSimulator::new(80, 40.0).simulate(&genome, &mut rng);
        let asm = SoftwareAssembler::new(AssemblyConfig::new(21)).assemble(&reads);
        // 40× coverage recovers essentially the whole genome in one contig;
        // only the extreme ends (covered by few read placements) may be
        // truncated.
        assert_eq!(asm.contigs.len(), 1);
        let frac = crate::stats::genome_fraction(&genome, &asm.contigs, 21);
        assert!(frac > 0.98, "genome fraction {frac}");
        // The contig is an exact substring of the genome.
        let g = genome.to_string();
        assert!(g.contains(&asm.contigs[0].to_string()));
    }

    #[test]
    fn unitigs_also_reconstruct_linear_genome() {
        let genome = random_genome(6, 1200);
        let cfg = AssemblyConfig::new(19).with_traversal(Traversal::Unitigs);
        let asm = SoftwareAssembler::new(cfg).assemble_sequence(&genome).unwrap();
        assert_eq!(asm.contigs.len(), 1);
        assert_eq!(asm.contigs[0].sequence(), &genome);
    }

    #[test]
    fn fleury_traversal_matches_hierholzer_sizes() {
        let genome = random_genome(7, 400);
        let euler =
            SoftwareAssembler::new(AssemblyConfig::new(15)).assemble_sequence(&genome).unwrap();
        let fleury = SoftwareAssembler::new(
            AssemblyConfig::new(15).with_traversal(Traversal::EulerPathFleury),
        )
        .assemble_sequence(&genome)
        .unwrap();
        assert_eq!(euler.stats.total_length, fleury.stats.total_length);
    }

    #[test]
    fn error_kmers_filtered_by_min_count() {
        let genome = random_genome(8, 1500);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let reads = ReadSimulator::new(80, 40.0).with_error_rate(0.005).simulate(&genome, &mut rng);
        let no_filter = SoftwareAssembler::new(AssemblyConfig::new(21)).assemble(&reads);
        let filtered =
            SoftwareAssembler::new(AssemblyConfig::new(21).with_min_count(3)).assemble(&reads);
        // Filtering removes most error edges, giving a graph close to the
        // true genome size.
        assert!(filtered.graph_edges < no_filter.graph_edges);
        assert!(filtered.graph_edges as f64 >= (genome.len() - 21) as f64 * 0.9);
        let frac = crate::stats::genome_fraction(&genome, &filtered.contigs, 21);
        assert!(frac > 0.95, "genome fraction {frac}");
    }

    #[test]
    fn assembly_counts_are_consistent() {
        let genome = random_genome(10, 800);
        let asm =
            SoftwareAssembler::new(AssemblyConfig::new(15)).assemble_sequence(&genome).unwrap();
        assert_eq!(asm.graph_edges, asm.distinct_kmers);
        assert_eq!(asm.total_kmers as usize, genome.len() - 15 + 1);
        assert!(asm.hash_probes >= asm.total_kmers);
    }

    #[test]
    fn simplification_repairs_noisy_assemblies() {
        // At min_count = 1 (no frequency filter), error k-mers survive as
        // tips and bubbles; simplification must recover a cleaner assembly.
        let genome = random_genome(55, 1500);
        let mut rng = ChaCha8Rng::seed_from_u64(56);
        let reads = ReadSimulator::new(80, 35.0).with_error_rate(0.003).simulate(&genome, &mut rng);
        let raw = SoftwareAssembler::new(AssemblyConfig::new(17)).assemble(&reads);
        let simplified = SoftwareAssembler::new(AssemblyConfig::new(17).with_simplification(34))
            .assemble(&reads);
        assert!(simplified.graph_edges < raw.graph_edges, "simplification removed nothing");
        assert!(simplified.contigs.len() <= raw.contigs.len());
        let frac = crate::stats::genome_fraction(&genome, &simplified.contigs, 17);
        assert!(frac > 0.95, "genome fraction {frac}");
    }

    #[test]
    fn repeat_genome_yields_multiple_contigs_with_unitigs() {
        // An *internal* exact repeat (flanked by unique sequence on both
        // sides) forces branch nodes at the repeat boundaries.
        let unit = random_genome(11, 250);
        let mut genome = random_genome(12, 300);
        genome.extend_from(&unit);
        genome.extend_from(&random_genome(13, 200));
        genome.extend_from(&unit);
        genome.extend_from(&random_genome(14, 300));
        let cfg = AssemblyConfig::new(15).with_traversal(Traversal::Unitigs);
        let asm = SoftwareAssembler::new(cfg).assemble_sequence(&genome).unwrap();
        assert!(asm.contigs.len() > 1);
        // Still, nearly all genomic k-mers are present in the contigs.
        let frac = crate::stats::genome_fraction(&genome, &asm.contigs, 15);
        assert!(frac > 0.95, "genome fraction {frac}");
    }
}
