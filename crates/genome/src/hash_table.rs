//! The `Hashmap(S, k)` procedure of Fig. 5b: a counting hash table over
//! k-mers.
//!
//! The table is an open-addressing map from packed k-mer to frequency,
//! implemented from scratch so that its probe behaviour can be mirrored by
//! the PIM mapping (each probe in hardware is one row comparison via
//! `PIM_XNOR`, each count update one `PIM_Add`). Insertion order is
//! preserved, matching how PIM-Assembler appends k-mers to consecutive rows
//! of the k-mer region (Fig. 6).

use crate::error::Result;
use crate::kmer::{Kmer, KmerIter};
use crate::sequence::DnaSequence;

/// Slot state in the open-addressing table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    /// Index into `entries`, or `usize::MAX` for empty.
    entry: usize,
}

const EMPTY: usize = usize::MAX;

/// One stored k-mer with its frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KmerEntry {
    /// The k-mer.
    pub kmer: Kmer,
    /// Occurrence count.
    pub count: u64,
}

/// A counting hash table over k-mers (the paper's hash table of Fig. 5b).
///
/// # Examples
///
/// ```
/// use pim_genome::{hash_table::KmerCounter, sequence::DnaSequence};
///
/// // The worked example of Fig. 5b: S = CGTGCGTGCTT, k = 5.
/// let s: DnaSequence = "CGTGCGTGCTT".parse()?;
/// let mut counter = KmerCounter::new(5)?;
/// counter.count_sequence(&s)?;
/// assert_eq!(counter.count(&"CGTGC".parse()?), 2);
/// assert_eq!(counter.count(&"GTGCG".parse()?), 1);
/// assert_eq!(counter.distinct(), 6);
/// # Ok::<(), pim_genome::GenomeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct KmerCounter {
    k: usize,
    slots: Vec<Slot>,
    entries: Vec<KmerEntry>,
    /// Total k-mers offered (sum of counts).
    total: u64,
    /// Probes performed across all lookups (mirrors the number of
    /// `PIM_XNOR` row comparisons the hardware mapping would issue).
    probes: u64,
}

impl KmerCounter {
    /// Creates an empty counter for k-mers of length `k`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GenomeError::UnsupportedK`] for k outside `1..=32`.
    pub fn new(k: usize) -> Result<Self> {
        // Validate k through the Kmer constructor contract.
        let _ = Kmer::from_packed(0, k)?;
        Ok(KmerCounter {
            k,
            slots: vec![Slot { entry: EMPTY }; 64],
            entries: Vec::new(),
            total: 0,
            probes: 0,
        })
    }

    /// The k this counter was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Inserts one occurrence of `kmer`, returning its new count.
    ///
    /// # Panics
    ///
    /// Panics if `kmer.k() != self.k()`.
    pub fn insert(&mut self, kmer: Kmer) -> u64 {
        assert_eq!(kmer.k(), self.k, "k-mer length mismatch");
        if self.entries.len() * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        self.total += 1;
        let slot = self.find_slot(kmer.packed());
        match self.slots[slot].entry {
            EMPTY => {
                self.entries.push(KmerEntry { kmer, count: 1 });
                self.slots[slot].entry = self.entries.len() - 1;
                1
            }
            e => {
                self.entries[e].count += 1;
                self.entries[e].count
            }
        }
    }

    /// Counts every k-mer of `seq` (one pass of the Fig. 5b loop).
    ///
    /// # Errors
    ///
    /// Returns [`crate::GenomeError::UnsupportedK`] if k is invalid (cannot
    /// happen after construction, but the iterator API is fallible).
    pub fn count_sequence(&mut self, seq: &DnaSequence) -> Result<()> {
        for kmer in KmerIter::new(seq, self.k)? {
            self.insert(kmer);
        }
        Ok(())
    }

    /// Counts every k-mer of `seq` in canonical form (the lexicographic
    /// minimum of the k-mer and its reverse complement), making the table
    /// strand-invariant — what a real sequencing workload needs, since
    /// reads come from both strands.
    ///
    /// # Errors
    ///
    /// Same as [`KmerCounter::count_sequence`].
    pub fn count_sequence_canonical(&mut self, seq: &DnaSequence) -> Result<()> {
        for kmer in KmerIter::new(seq, self.k)? {
            self.insert(kmer.canonical());
        }
        Ok(())
    }

    /// Current count of `kmer` (0 if absent).
    pub fn count(&self, kmer: &Kmer) -> u64 {
        let slot = self.probe(kmer.packed());
        match self.slots[slot].entry {
            EMPTY => 0,
            e => self.entries[e].count,
        }
    }

    /// Whether `kmer` has been seen.
    pub fn contains(&self, kmer: &Kmer) -> bool {
        self.count(kmer) > 0
    }

    /// Number of distinct k-mers.
    pub fn distinct(&self) -> usize {
        self.entries.len()
    }

    /// Total k-mers inserted (sum of counts).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Probes performed so far (hardware-comparison proxy).
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Entries in insertion order (the order rows fill up in Fig. 6).
    pub fn entries(&self) -> &[KmerEntry] {
        &self.entries
    }

    /// Iterates entries with count ≥ `min_count` (error-k-mer filtering).
    pub fn entries_with_min_count(&self, min_count: u64) -> impl Iterator<Item = &KmerEntry> {
        self.entries.iter().filter(move |e| e.count >= min_count)
    }

    /// Finds the slot for `packed`, counting probes; the slot either holds
    /// the key or is the first empty one.
    fn find_slot(&mut self, packed: u64) -> usize {
        let mut i = hash(packed) as usize & (self.slots.len() - 1);
        let mut step = 1usize;
        loop {
            self.probes += 1;
            match self.slots[i].entry {
                EMPTY => return i,
                e if self.entries[e].kmer.packed() == packed => return i,
                _ => {
                    i = (i + step) & (self.slots.len() - 1);
                    step += 1;
                }
            }
        }
    }

    /// Non-mutating probe (no probe accounting).
    fn probe(&self, packed: u64) -> usize {
        let mut i = hash(packed) as usize & (self.slots.len() - 1);
        let mut step = 1usize;
        loop {
            match self.slots[i].entry {
                EMPTY => return i,
                e if self.entries[e].kmer.packed() == packed => return i,
                _ => {
                    i = (i + step) & (self.slots.len() - 1);
                    step += 1;
                }
            }
        }
    }

    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        self.slots = vec![Slot { entry: EMPTY }; new_len];
        for (idx, e) in self.entries.iter().enumerate() {
            let mut i = hash(e.kmer.packed()) as usize & (new_len - 1);
            let mut step = 1usize;
            while self.slots[i].entry != EMPTY {
                i = (i + step) & (new_len - 1);
                step += 1;
            }
            self.slots[i].entry = idx;
        }
    }
}

/// 64-bit mix (splitmix64 finalizer) — cheap and uniform for packed k-mers.
fn hash(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kmer(s: &str) -> Kmer {
        s.parse().unwrap()
    }

    #[test]
    fn fig5b_hash_table() {
        let s: DnaSequence = "CGTGCGTGCTT".parse().unwrap();
        let mut c = KmerCounter::new(5).unwrap();
        c.count_sequence(&s).unwrap();
        // The exact table of Fig. 5b.
        let expected =
            [("CGTGC", 2), ("GTGCG", 1), ("TGCGT", 1), ("GCGTG", 1), ("GTGCT", 1), ("TGCTT", 1)];
        for (km, n) in expected {
            assert_eq!(c.count(&kmer(km)), n, "{km}");
        }
        assert_eq!(c.distinct(), 6);
        assert_eq!(c.total(), 7);
    }

    #[test]
    fn insertion_order_preserved() {
        let s: DnaSequence = "CGTGCGTGCTT".parse().unwrap();
        let mut c = KmerCounter::new(5).unwrap();
        c.count_sequence(&s).unwrap();
        let order: Vec<String> = c.entries().iter().map(|e| e.kmer.to_string()).collect();
        assert_eq!(order, vec!["CGTGC", "GTGCG", "TGCGT", "GCGTG", "GTGCT", "TGCTT"]);
    }

    #[test]
    fn growth_keeps_counts() {
        let mut c = KmerCounter::new(8).unwrap();
        // Insert enough distinct k-mers to force several growths.
        for v in 0..5000u64 {
            c.insert(Kmer::from_packed(v, 8).unwrap());
        }
        for v in 0..5000u64 {
            assert_eq!(c.count(&Kmer::from_packed(v, 8).unwrap()), 1, "v={v}");
        }
        assert_eq!(c.distinct(), 5000);
    }

    #[test]
    fn repeated_inserts_increment() {
        let mut c = KmerCounter::new(4).unwrap();
        let k = kmer("ACGT");
        assert_eq!(c.insert(k), 1);
        assert_eq!(c.insert(k), 2);
        assert_eq!(c.insert(k), 3);
        assert_eq!(c.count(&k), 3);
        assert_eq!(c.total(), 3);
        assert_eq!(c.distinct(), 1);
    }

    #[test]
    fn min_count_filter_drops_singletons() {
        let mut c = KmerCounter::new(4).unwrap();
        c.insert(kmer("ACGT"));
        c.insert(kmer("ACGT"));
        c.insert(kmer("TTTT"));
        let kept: Vec<String> = c.entries_with_min_count(2).map(|e| e.kmer.to_string()).collect();
        assert_eq!(kept, vec!["ACGT"]);
    }

    #[test]
    fn probes_accumulate() {
        let mut c = KmerCounter::new(4).unwrap();
        c.insert(kmer("ACGT"));
        assert!(c.probes() >= 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_k_panics() {
        let mut c = KmerCounter::new(4).unwrap();
        c.insert(kmer("ACG"));
    }

    #[test]
    fn canonical_counting_is_strand_invariant() {
        let s: DnaSequence = "ACGTTGCAACGGTTAG".parse().unwrap();
        let rc = s.reverse_complement();
        let mut forward = KmerCounter::new(7).unwrap();
        forward.count_sequence_canonical(&s).unwrap();
        let mut reverse = KmerCounter::new(7).unwrap();
        reverse.count_sequence_canonical(&rc).unwrap();
        assert_eq!(forward.distinct(), reverse.distinct());
        for e in forward.entries() {
            assert_eq!(reverse.count(&e.kmer), e.count, "{}", e.kmer);
        }
        // Plain counting is NOT strand-invariant on this sequence.
        let mut plain = KmerCounter::new(7).unwrap();
        plain.count_sequence(&s).unwrap();
        let mut plain_rc = KmerCounter::new(7).unwrap();
        plain_rc.count_sequence(&rc).unwrap();
        let same = plain.entries().iter().all(|e| plain_rc.count(&e.kmer) == e.count);
        assert!(!same, "expected strand asymmetry without canonicalization");
    }

    #[test]
    fn absent_kmer_counts_zero() {
        let c = KmerCounter::new(4).unwrap();
        assert_eq!(c.count(&kmer("AAAA")), 0);
        assert!(!c.contains(&kmer("AAAA")));
    }
}
