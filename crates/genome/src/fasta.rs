//! Minimal FASTA input/output.
//!
//! Enough of the format to interchange references, reads, and contigs with
//! standard tooling: `>`-headers, wrapped sequence lines, `ACGT`/`acgt`
//! alphabet. IUPAC ambiguity codes (`N` and friends) cannot be represented
//! by the 2-bit pipeline, so a record containing them is *split* at each
//! run of ambiguous positions into separate records — the standard
//! assembler treatment of N-gaps (no k-mer may span an uncalled base) —
//! instead of rejecting the whole file.

use std::io::{BufRead, Write};

use crate::base::{is_ambiguity_code, DnaBase};
use crate::error::{GenomeError, Result};
use crate::sequence::DnaSequence;

/// One FASTA record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Header text after `>` (up to the first newline).
    pub name: String,
    /// The sequence.
    pub seq: DnaSequence,
}

/// A record being accumulated, possibly splitting at ambiguity runs.
struct PendingRecord {
    name: String,
    header_line: usize,
    fragments: Vec<DnaSequence>,
    current: DnaSequence,
    saw_sequence_chars: bool,
}

impl PendingRecord {
    fn new(name: String, header_line: usize) -> Self {
        PendingRecord {
            name,
            header_line,
            fragments: Vec::new(),
            current: DnaSequence::new(),
            saw_sequence_chars: false,
        }
    }

    /// Ends the in-progress fragment (called at an ambiguity run).
    fn split(&mut self) {
        if !self.current.is_empty() {
            self.fragments.push(std::mem::replace(&mut self.current, DnaSequence::new()));
        }
    }

    /// Closes the record: one output record per non-empty fragment, named
    /// `{name}:{i}` when the record split. A record whose sequence was
    /// entirely ambiguous yields nothing; a record with *no* sequence
    /// lines at all is malformed.
    fn finish(mut self, records: &mut Vec<FastaRecord>) -> Result<()> {
        self.split();
        if self.fragments.is_empty() {
            if !self.saw_sequence_chars {
                return Err(GenomeError::MalformedFasta {
                    line: self.header_line,
                    reason: "record with empty sequence",
                });
            }
            return Ok(()); // all-N record: nothing assemblable, drop it
        }
        if self.fragments.len() == 1 {
            records.push(FastaRecord { name: self.name, seq: self.fragments.pop().unwrap() });
        } else {
            for (i, seq) in self.fragments.into_iter().enumerate() {
                records.push(FastaRecord { name: format!("{}:{}", self.name, i + 1), seq });
            }
        }
        Ok(())
    }
}

/// Parses all records from a reader.
///
/// Lower-case bases are accepted; runs of IUPAC ambiguity codes split a
/// record into multiple records named `{name}:{i}` (a record with a single
/// fragment keeps its name, and all-ambiguous records are dropped).
///
/// # Errors
///
/// * [`GenomeError::MalformedFasta`] when sequence data precedes the first
///   header or a record has no sequence lines.
/// * [`GenomeError::InvalidBase`] for characters that are neither
///   `ACGTacgt` nor ambiguity codes.
/// * [`GenomeError::Io`] for underlying read failures.
///
/// # Examples
///
/// ```
/// use pim_genome::fasta::read_fasta;
///
/// let input = ">seq1\nACGT\nACGT\n>seq2\nTTNNTT\n";
/// let records = read_fasta(input.as_bytes())?;
/// assert_eq!(records.len(), 3); // seq2 splits at the N-run
/// assert_eq!(records[1].name, "seq2:1");
/// # Ok::<(), pim_genome::GenomeError>(())
/// ```
pub fn read_fasta<R: BufRead>(reader: R) -> Result<Vec<FastaRecord>> {
    let mut records: Vec<FastaRecord> = Vec::new();
    let mut pending: Option<PendingRecord> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('>') {
            if let Some(p) = pending.take() {
                p.finish(&mut records)?;
            }
            pending = Some(PendingRecord::new(name.trim().to_string(), lineno + 1));
        } else {
            let p = pending.as_mut().ok_or(GenomeError::MalformedFasta {
                line: lineno + 1,
                reason: "sequence before first header",
            })?;
            for (col, ch) in line.chars().enumerate() {
                p.saw_sequence_chars = true;
                if is_ambiguity_code(ch) {
                    p.split();
                } else {
                    p.current.push(DnaBase::try_from_char_at(ch, col)?);
                }
            }
        }
    }
    if let Some(p) = pending.take() {
        p.finish(&mut records)?;
    }
    Ok(records)
}

/// Writes records to a writer, wrapping sequence lines at 70 columns.
///
/// # Errors
///
/// Returns [`GenomeError::Io`] on write failure.
pub fn write_fasta<W: Write>(mut writer: W, records: &[FastaRecord]) -> Result<()> {
    for r in records {
        writeln!(writer, ">{}", r.name)?;
        let text = r.seq.to_string();
        for chunk in text.as_bytes().chunks(70) {
            writer.write_all(chunk)?;
            writeln!(writer)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let records = vec![
            FastaRecord { name: "a".into(), seq: "ACGTACGT".parse().unwrap() },
            FastaRecord { name: "b desc".into(), seq: "TT".parse().unwrap() },
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records).unwrap();
        let parsed = read_fasta(buf.as_slice()).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn multiline_sequences_concatenate() {
        let recs = read_fasta(">x\nAC\nGT\n".as_bytes()).unwrap();
        assert_eq!(recs[0].seq.to_string(), "ACGT");
    }

    #[test]
    fn long_sequences_wrap_on_write() {
        let seq: DnaSequence = "A".repeat(150).parse().unwrap();
        let mut buf = Vec::new();
        write_fasta(&mut buf, &[FastaRecord { name: "long".into(), seq }]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.lines().all(|l| l.len() <= 70));
    }

    #[test]
    fn sequence_before_header_rejected() {
        let err = read_fasta("ACGT\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GenomeError::MalformedFasta { .. }));
    }

    #[test]
    fn empty_record_rejected() {
        let err = read_fasta(">x\n>y\nACGT\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GenomeError::MalformedFasta { .. }));
    }

    #[test]
    fn n_runs_split_records() {
        let recs = read_fasta(">x\nACGTNNNNTTTT\n".as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!((recs[0].name.as_str(), recs[0].seq.to_string().as_str()), ("x:1", "ACGT"));
        assert_eq!((recs[1].name.as_str(), recs[1].seq.to_string().as_str()), ("x:2", "TTTT"));
    }

    #[test]
    fn n_runs_split_across_line_boundaries() {
        // The run ends one line and starts the next: still a single split.
        let recs = read_fasta(">x\nACGTN\nNGGG\n".as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq.to_string(), "ACGT");
        assert_eq!(recs[1].seq.to_string(), "GGG");
    }

    #[test]
    fn single_fragment_keeps_its_name() {
        // Leading/trailing Ns trim rather than split: one fragment, no
        // `:i` suffix.
        let recs = read_fasta(">x\nNNACGTNN\n".as_bytes()).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name, "x");
        assert_eq!(recs[0].seq.to_string(), "ACGT");
    }

    #[test]
    fn lowercase_and_mixed_case_accepted() {
        let recs = read_fasta(">x\nacgtACGT\n>y\naCnNgT\n".as_bytes()).unwrap();
        assert_eq!(recs[0].seq.to_string(), "ACGTACGT");
        // Lower-case n is an ambiguity code too.
        assert_eq!(recs[1].name, "y:1");
        assert_eq!(recs[1].seq.to_string(), "AC");
        assert_eq!(recs[2].seq.to_string(), "GT");
    }

    #[test]
    fn all_ambiguous_records_dropped() {
        let recs = read_fasta(">gap\nNNNN\n>y\nACGT\n".as_bytes()).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name, "y");
    }

    #[test]
    fn truly_invalid_chars_still_rejected() {
        let err = read_fasta(">x\nAC*T\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GenomeError::InvalidBase { ch: '*', .. }));
    }

    #[test]
    fn blank_lines_ignored() {
        let recs = read_fasta(">x\n\nAC\n\nGT\n".as_bytes()).unwrap();
        assert_eq!(recs[0].seq.to_string(), "ACGT");
    }
}
