//! Minimal FASTA input/output.
//!
//! Enough of the format to interchange references, reads, and contigs with
//! standard tooling: `>`-headers, wrapped sequence lines, `ACGT`/`acgt`
//! alphabet. IUPAC ambiguity codes (`N` and friends) cannot be represented
//! by the 2-bit pipeline, so a record containing them is *split* at each
//! run of ambiguous positions into separate records — the standard
//! assembler treatment of N-gaps (no k-mer may span an uncalled base) —
//! instead of rejecting the whole file.

use std::io::{BufRead, Write};

use crate::base::{is_ambiguity_code, DnaBase};
use crate::error::{GenomeError, Result};
use crate::sequence::DnaSequence;

/// One FASTA record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Header text after `>` (up to the first newline).
    pub name: String,
    /// The sequence.
    pub seq: DnaSequence,
}

/// A record being accumulated, possibly splitting at ambiguity runs.
struct PendingRecord {
    name: String,
    header_line: usize,
    fragments: Vec<DnaSequence>,
    current: DnaSequence,
    saw_sequence_chars: bool,
}

impl PendingRecord {
    fn new(name: String, header_line: usize) -> Self {
        PendingRecord {
            name,
            header_line,
            fragments: Vec::new(),
            current: DnaSequence::new(),
            saw_sequence_chars: false,
        }
    }

    /// Ends the in-progress fragment (called at an ambiguity run).
    fn split(&mut self) {
        if !self.current.is_empty() {
            self.fragments.push(std::mem::replace(&mut self.current, DnaSequence::new()));
        }
    }

    /// Closes the record: one output record per non-empty fragment, named
    /// `{name}:{i}` when the record split. A record whose sequence was
    /// entirely ambiguous yields nothing; a record with *no* sequence
    /// lines at all is malformed.
    fn finish(mut self, records: &mut Vec<FastaRecord>) -> Result<()> {
        self.split();
        if self.fragments.is_empty() {
            if !self.saw_sequence_chars {
                return Err(GenomeError::MalformedFasta {
                    line: self.header_line,
                    reason: "record with empty sequence",
                });
            }
            return Ok(()); // all-N record: nothing assemblable, drop it
        }
        if self.fragments.len() == 1 {
            records.push(FastaRecord { name: self.name, seq: self.fragments.pop().unwrap() });
        } else {
            for (i, seq) in self.fragments.into_iter().enumerate() {
                records.push(FastaRecord { name: format!("{}:{}", self.name, i + 1), seq });
            }
        }
        Ok(())
    }
}

/// Parses all records from a reader.
///
/// Lower-case bases are accepted; runs of IUPAC ambiguity codes split a
/// record into multiple records named `{name}:{i}` (a record with a single
/// fragment keeps its name, and all-ambiguous records are dropped).
///
/// # Errors
///
/// * [`GenomeError::MalformedFasta`] when sequence data precedes the first
///   header or a record has no sequence lines.
/// * [`GenomeError::InvalidBase`] for characters that are neither
///   `ACGTacgt` nor ambiguity codes.
/// * [`GenomeError::Io`] for underlying read failures.
///
/// # Examples
///
/// ```
/// use pim_genome::fasta::read_fasta;
///
/// let input = ">seq1\nACGT\nACGT\n>seq2\nTTNNTT\n";
/// let records = read_fasta(input.as_bytes())?;
/// assert_eq!(records.len(), 3); // seq2 splits at the N-run
/// assert_eq!(records[1].name, "seq2:1");
/// # Ok::<(), pim_genome::GenomeError>(())
/// ```
pub fn read_fasta<R: BufRead>(reader: R) -> Result<Vec<FastaRecord>> {
    fasta_records(reader).collect()
}

/// Streaming FASTA parser: an iterator over records.
///
/// Yields exactly the records [`read_fasta`] would return, in the same
/// order (the eager reader is implemented on top of this iterator), but
/// holds at most one input record — plus its ambiguity-split fragments —
/// in memory at a time, so arbitrarily large files can be consumed
/// out-of-core. Construct with [`fasta_records`].
pub struct FastaRecords<R: BufRead> {
    lines: std::iter::Enumerate<std::io::Lines<R>>,
    pending: Option<PendingRecord>,
    queue: std::collections::VecDeque<FastaRecord>,
    done: bool,
}

/// Creates a streaming record iterator over a FASTA reader.
///
/// # Examples
///
/// ```
/// use pim_genome::fasta::fasta_records;
///
/// let input = ">seq1\nACGT\n>seq2\nTTNNTT\n";
/// let names: Vec<String> = fasta_records(input.as_bytes())
///     .map(|r| r.map(|rec| rec.name))
///     .collect::<Result<_, _>>()?;
/// assert_eq!(names, ["seq1", "seq2:1", "seq2:2"]);
/// # Ok::<(), pim_genome::GenomeError>(())
/// ```
pub fn fasta_records<R: BufRead>(reader: R) -> FastaRecords<R> {
    FastaRecords {
        lines: reader.lines().enumerate(),
        pending: None,
        queue: std::collections::VecDeque::new(),
        done: false,
    }
}

impl<R: BufRead> FastaRecords<R> {
    /// Consumes one input line, updating the pending record and pushing
    /// any completed records onto the queue.
    fn consume_line(&mut self, lineno: usize, line: &str) -> Result<()> {
        let line = line.trim_end();
        if line.is_empty() {
            return Ok(());
        }
        if let Some(name) = line.strip_prefix('>') {
            if let Some(p) = self.pending.take() {
                let mut out = Vec::new();
                p.finish(&mut out)?;
                self.queue.extend(out);
            }
            self.pending = Some(PendingRecord::new(name.trim().to_string(), lineno + 1));
        } else {
            let p = self.pending.as_mut().ok_or(GenomeError::MalformedFasta {
                line: lineno + 1,
                reason: "sequence before first header",
            })?;
            for (col, ch) in line.chars().enumerate() {
                p.saw_sequence_chars = true;
                if is_ambiguity_code(ch) {
                    p.split();
                } else {
                    p.current.push(DnaBase::try_from_char_at(ch, col)?);
                }
            }
        }
        Ok(())
    }
}

impl<R: BufRead> Iterator for FastaRecords<R> {
    type Item = Result<FastaRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(rec) = self.queue.pop_front() {
                return Some(Ok(rec));
            }
            if self.done {
                return None;
            }
            match self.lines.next() {
                None => {
                    self.done = true;
                    if let Some(p) = self.pending.take() {
                        let mut out = Vec::new();
                        if let Err(e) = p.finish(&mut out) {
                            return Some(Err(e));
                        }
                        self.queue.extend(out);
                    }
                }
                Some((lineno, line)) => {
                    let line = match line {
                        Ok(line) => line,
                        Err(e) => {
                            self.done = true;
                            return Some(Err(e.into()));
                        }
                    };
                    if let Err(e) = self.consume_line(lineno, &line) {
                        self.done = true;
                        return Some(Err(e));
                    }
                }
            }
        }
    }
}

/// Writes records to a writer, wrapping sequence lines at 70 columns.
///
/// # Errors
///
/// Returns [`GenomeError::Io`] on write failure.
pub fn write_fasta<W: Write>(mut writer: W, records: &[FastaRecord]) -> Result<()> {
    for r in records {
        writeln!(writer, ">{}", r.name)?;
        let text = r.seq.to_string();
        for chunk in text.as_bytes().chunks(70) {
            writer.write_all(chunk)?;
            writeln!(writer)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let records = vec![
            FastaRecord { name: "a".into(), seq: "ACGTACGT".parse().unwrap() },
            FastaRecord { name: "b desc".into(), seq: "TT".parse().unwrap() },
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records).unwrap();
        let parsed = read_fasta(buf.as_slice()).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn multiline_sequences_concatenate() {
        let recs = read_fasta(">x\nAC\nGT\n".as_bytes()).unwrap();
        assert_eq!(recs[0].seq.to_string(), "ACGT");
    }

    #[test]
    fn long_sequences_wrap_on_write() {
        let seq: DnaSequence = "A".repeat(150).parse().unwrap();
        let mut buf = Vec::new();
        write_fasta(&mut buf, &[FastaRecord { name: "long".into(), seq }]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.lines().all(|l| l.len() <= 70));
    }

    #[test]
    fn sequence_before_header_rejected() {
        let err = read_fasta("ACGT\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GenomeError::MalformedFasta { .. }));
    }

    #[test]
    fn empty_record_rejected() {
        let err = read_fasta(">x\n>y\nACGT\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GenomeError::MalformedFasta { .. }));
    }

    #[test]
    fn n_runs_split_records() {
        let recs = read_fasta(">x\nACGTNNNNTTTT\n".as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!((recs[0].name.as_str(), recs[0].seq.to_string().as_str()), ("x:1", "ACGT"));
        assert_eq!((recs[1].name.as_str(), recs[1].seq.to_string().as_str()), ("x:2", "TTTT"));
    }

    #[test]
    fn n_runs_split_across_line_boundaries() {
        // The run ends one line and starts the next: still a single split.
        let recs = read_fasta(">x\nACGTN\nNGGG\n".as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq.to_string(), "ACGT");
        assert_eq!(recs[1].seq.to_string(), "GGG");
    }

    #[test]
    fn single_fragment_keeps_its_name() {
        // Leading/trailing Ns trim rather than split: one fragment, no
        // `:i` suffix.
        let recs = read_fasta(">x\nNNACGTNN\n".as_bytes()).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name, "x");
        assert_eq!(recs[0].seq.to_string(), "ACGT");
    }

    #[test]
    fn lowercase_and_mixed_case_accepted() {
        let recs = read_fasta(">x\nacgtACGT\n>y\naCnNgT\n".as_bytes()).unwrap();
        assert_eq!(recs[0].seq.to_string(), "ACGTACGT");
        // Lower-case n is an ambiguity code too.
        assert_eq!(recs[1].name, "y:1");
        assert_eq!(recs[1].seq.to_string(), "AC");
        assert_eq!(recs[2].seq.to_string(), "GT");
    }

    #[test]
    fn all_ambiguous_records_dropped() {
        let recs = read_fasta(">gap\nNNNN\n>y\nACGT\n".as_bytes()).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name, "y");
    }

    #[test]
    fn truly_invalid_chars_still_rejected() {
        let err = read_fasta(">x\nAC*T\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GenomeError::InvalidBase { ch: '*', .. }));
    }

    #[test]
    fn blank_lines_ignored() {
        let recs = read_fasta(">x\n\nAC\n\nGT\n".as_bytes()).unwrap();
        assert_eq!(recs[0].seq.to_string(), "ACGT");
    }

    /// Streaming and eager parses must agree record for record.
    fn assert_streaming_matches_eager(input: &str) {
        let eager = read_fasta(input.as_bytes()).unwrap();
        let streamed: Vec<FastaRecord> =
            fasta_records(input.as_bytes()).collect::<Result<_>>().unwrap();
        assert_eq!(streamed, eager, "streamed/eager drift on {input:?}");
    }

    #[test]
    fn streaming_matches_eager_on_multi_record_input() {
        assert_streaming_matches_eager(">a\nACGT\nACGT\n>b desc\nTT\n>c\nGGGG\n");
    }

    #[test]
    fn streaming_matches_eager_on_lowercase_input() {
        assert_streaming_matches_eager(">x\nacgtACGT\n>y\ntgca\n");
    }

    #[test]
    fn streaming_matches_eager_on_iupac_split_input() {
        assert_streaming_matches_eager(">x\nACGTNNNNTTTT\n>gap\nNNNN\n>y\nNNACGTN\nNGGG\n");
    }

    #[test]
    fn streaming_yields_records_before_the_file_ends() {
        // The first record must be available after its header/body lines,
        // without consuming the rest of the input eagerly.
        let mut it = fasta_records(">a\nAC\n>b\nGT\n".as_bytes());
        assert_eq!(it.next().unwrap().unwrap().name, "a");
        assert_eq!(it.next().unwrap().unwrap().name, "b");
        assert!(it.next().is_none());
    }

    #[test]
    fn streaming_surfaces_errors_and_stops() {
        let mut it = fasta_records("ACGT\n".as_bytes());
        assert!(matches!(it.next(), Some(Err(GenomeError::MalformedFasta { .. }))));
        assert!(it.next().is_none());
    }
}
