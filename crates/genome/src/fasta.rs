//! Minimal FASTA input/output.
//!
//! Enough of the format to interchange references, reads, and contigs with
//! standard tooling: `>`-headers, wrapped sequence lines, `ACGT` alphabet
//! (other IUPAC codes are rejected — the 2-bit pipeline cannot represent
//! them, mirroring how the paper's encoding handles only the four bases).

use std::io::{BufRead, Write};

use crate::error::{GenomeError, Result};
use crate::sequence::DnaSequence;

/// One FASTA record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Header text after `>` (up to the first newline).
    pub name: String,
    /// The sequence.
    pub seq: DnaSequence,
}

/// Parses all records from a reader.
///
/// # Errors
///
/// * [`GenomeError::MalformedFasta`] when sequence data precedes the first
///   header or a record is empty.
/// * [`GenomeError::InvalidBase`] for non-ACGT characters.
/// * [`GenomeError::Io`] for underlying read failures.
///
/// # Examples
///
/// ```
/// use pim_genome::fasta::read_fasta;
///
/// let input = ">seq1\nACGT\nACGT\n>seq2\nTTTT\n";
/// let records = read_fasta(input.as_bytes())?;
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[0].seq.len(), 8);
/// # Ok::<(), pim_genome::GenomeError>(())
/// ```
pub fn read_fasta<R: BufRead>(reader: R) -> Result<Vec<FastaRecord>> {
    let mut records: Vec<FastaRecord> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('>') {
            records.push(FastaRecord { name: name.trim().to_string(), seq: DnaSequence::new() });
        } else {
            let record = records.last_mut().ok_or(GenomeError::MalformedFasta {
                line: lineno + 1,
                reason: "sequence before first header",
            })?;
            for (col, ch) in line.chars().enumerate() {
                record.seq.push(crate::base::DnaBase::try_from_char_at(ch, col)?);
            }
        }
    }
    for (i, r) in records.iter().enumerate() {
        if r.seq.is_empty() {
            return Err(GenomeError::MalformedFasta {
                line: i + 1,
                reason: "record with empty sequence",
            });
        }
    }
    Ok(records)
}

/// Writes records to a writer, wrapping sequence lines at 70 columns.
///
/// # Errors
///
/// Returns [`GenomeError::Io`] on write failure.
pub fn write_fasta<W: Write>(mut writer: W, records: &[FastaRecord]) -> Result<()> {
    for r in records {
        writeln!(writer, ">{}", r.name)?;
        let text = r.seq.to_string();
        for chunk in text.as_bytes().chunks(70) {
            writer.write_all(chunk)?;
            writeln!(writer)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let records = vec![
            FastaRecord { name: "a".into(), seq: "ACGTACGT".parse().unwrap() },
            FastaRecord { name: "b desc".into(), seq: "TT".parse().unwrap() },
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records).unwrap();
        let parsed = read_fasta(buf.as_slice()).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn multiline_sequences_concatenate() {
        let recs = read_fasta(">x\nAC\nGT\n".as_bytes()).unwrap();
        assert_eq!(recs[0].seq.to_string(), "ACGT");
    }

    #[test]
    fn long_sequences_wrap_on_write() {
        let seq: DnaSequence = "A".repeat(150).parse().unwrap();
        let mut buf = Vec::new();
        write_fasta(&mut buf, &[FastaRecord { name: "long".into(), seq }]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.lines().all(|l| l.len() <= 70));
    }

    #[test]
    fn sequence_before_header_rejected() {
        let err = read_fasta("ACGT\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GenomeError::MalformedFasta { .. }));
    }

    #[test]
    fn empty_record_rejected() {
        let err = read_fasta(">x\n>y\nACGT\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GenomeError::MalformedFasta { .. }));
    }

    #[test]
    fn bad_bases_rejected() {
        let err = read_fasta(">x\nACNGT\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GenomeError::InvalidBase { ch: 'N', .. }));
    }

    #[test]
    fn blank_lines_ignored() {
        let recs = read_fasta(">x\n\nAC\n\nGT\n".as_bytes()).unwrap();
        assert_eq!(recs[0].seq.to_string(), "ACGT");
    }
}
