//! Structured genome simulation.
//!
//! Purely random sequences are (almost) repeat-free at the paper's k
//! values, which makes assembly artificially easy. This generator plants
//! exact repeat families into a random background so tests and benchmarks
//! can exercise branch handling, unitig breaking, and scaffolding the way
//! a real chromosome would.

use rand::Rng;

use crate::sequence::DnaSequence;

/// Specification of a planted repeat family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepeatFamily {
    /// Length of the repeated unit (bp).
    pub unit_len: usize,
    /// Number of copies planted.
    pub copies: usize,
}

/// Genome generator with planted repeat structure.
///
/// # Examples
///
/// ```
/// use pim_genome::simulate::{GenomeSimulator, RepeatFamily};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
/// let sim = GenomeSimulator::new(5_000)
///     .with_repeat(RepeatFamily { unit_len: 300, copies: 3 });
/// let genome = sim.generate(&mut rng);
/// assert_eq!(genome.len(), 5_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenomeSimulator {
    length: usize,
    repeats: Vec<RepeatFamily>,
}

impl GenomeSimulator {
    /// Creates a simulator for a genome of `length` bp.
    ///
    /// # Panics
    ///
    /// Panics if `length == 0`.
    pub fn new(length: usize) -> Self {
        assert!(length > 0, "genome length must be positive");
        GenomeSimulator { length, repeats: Vec::new() }
    }

    /// Adds a repeat family.
    ///
    /// # Panics
    ///
    /// Panics if the family's total size exceeds the genome.
    pub fn with_repeat(mut self, family: RepeatFamily) -> Self {
        let total: usize = self
            .repeats
            .iter()
            .chain(std::iter::once(&family))
            .map(|f| f.unit_len * f.copies)
            .sum();
        assert!(total < self.length, "repeat content exceeds genome length");
        self.repeats.push(family);
        self
    }

    /// Target length.
    pub fn length(&self) -> usize {
        self.length
    }

    /// Generates the genome: random background with each family's unit
    /// copied into `copies` non-overlapping positions.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> DnaSequence {
        let mut genome = DnaSequence::random(rng, self.length);
        // Reserve disjoint slots by slicing the genome into equal segments
        // and planting one copy per segment — guarantees non-overlap.
        let total_copies: usize = self.repeats.iter().map(|f| f.copies).sum();
        if total_copies == 0 {
            return genome;
        }
        let segment = self.length / total_copies;
        let mut slot = 0usize;
        for family in &self.repeats {
            let unit = DnaSequence::random(rng, family.unit_len);
            for _ in 0..family.copies {
                let base = slot * segment;
                let max_off = segment.saturating_sub(family.unit_len);
                let off = if max_off == 0 { 0 } else { rng.gen_range(0..max_off) };
                genome = splice_sequence(&genome, base + off, &unit);
                slot += 1;
            }
        }
        genome
    }
}

/// Returns `genome` with `unit` written at `offset`.
fn splice_sequence(genome: &DnaSequence, offset: usize, unit: &DnaSequence) -> DnaSequence {
    let mut out = DnaSequence::with_capacity(genome.len());
    for i in 0..genome.len() {
        if i >= offset && i < offset + unit.len() {
            out.push(unit.get(i - offset));
        } else {
            out.push(genome.get(i));
        }
    }
    out
}

/// Counts exact occurrences of `unit` in `genome` (verification helper).
pub fn count_occurrences(genome: &DnaSequence, unit: &DnaSequence) -> usize {
    if unit.is_empty() || unit.len() > genome.len() {
        return 0;
    }
    let g = genome.to_string();
    let u = unit.to_string();
    let mut n = 0;
    let mut from = 0;
    while let Some(pos) = g[from..].find(&u) {
        n += 1;
        from += pos + 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::{AssemblyConfig, SoftwareAssembler, Traversal};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn plants_the_requested_copies() {
        let mut rng = ChaCha8Rng::seed_from_u64(40);
        let sim = GenomeSimulator::new(4000).with_repeat(RepeatFamily { unit_len: 200, copies: 3 });
        let genome = sim.generate(&mut rng);
        assert_eq!(genome.len(), 4000);
        // Recover the planted unit by checking any 200-window appearing 3×:
        // simpler — regenerate with the same seed to capture the unit.
        // Instead verify structurally: some 50-mer occurs ≥ 3 times.
        let mut found = false;
        for start in (0..genome.len() - 50).step_by(25) {
            let window = genome.subsequence(start, 50);
            if count_occurrences(&genome, &window) >= 3 {
                found = true;
                break;
            }
        }
        assert!(found, "no 3×-repeated 50-mer found");
    }

    #[test]
    fn repeat_free_genome_has_no_duplicated_windows() {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let genome = GenomeSimulator::new(3000).generate(&mut rng);
        for start in (0..genome.len() - 40).step_by(100) {
            let w = genome.subsequence(start, 40);
            assert_eq!(count_occurrences(&genome, &w), 1, "window at {start} repeats");
        }
    }

    #[test]
    fn repeats_break_unitigs() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let plain = GenomeSimulator::new(3000).generate(&mut rng);
        let repetitive = GenomeSimulator::new(3000)
            .with_repeat(RepeatFamily { unit_len: 250, copies: 3 })
            .generate(&mut rng);
        let cfg = AssemblyConfig::new(17).with_traversal(Traversal::Unitigs);
        let asm_plain = SoftwareAssembler::new(cfg).assemble_sequence(&plain).unwrap();
        let asm_rep = SoftwareAssembler::new(cfg).assemble_sequence(&repetitive).unwrap();
        assert_eq!(asm_plain.contigs.len(), 1);
        assert!(asm_rep.contigs.len() > 1, "repeats must fragment the assembly");
    }

    #[test]
    fn multiple_families_fit() {
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        let sim = GenomeSimulator::new(10_000)
            .with_repeat(RepeatFamily { unit_len: 300, copies: 2 })
            .with_repeat(RepeatFamily { unit_len: 150, copies: 4 });
        let genome = sim.generate(&mut rng);
        assert_eq!(genome.len(), 10_000);
    }

    #[test]
    #[should_panic(expected = "repeat content exceeds")]
    fn oversized_repeats_rejected() {
        let _ = GenomeSimulator::new(1000).with_repeat(RepeatFamily { unit_len: 600, copies: 2 });
    }

    #[test]
    fn occurrence_counter_handles_overlaps() {
        let genome: DnaSequence = "AAAA".parse().unwrap();
        let unit: DnaSequence = "AA".parse().unwrap();
        assert_eq!(count_occurrences(&genome, &unit), 3);
        assert_eq!(count_occurrences(&genome, &"CCCCC".parse().unwrap()), 0);
    }
}
