//! Banded global alignment for assembly validation.
//!
//! Genome fraction (k-mer containment) says *what* was recovered; alignment
//! identity says *how faithfully*. This module implements Needleman-Wunsch
//! with an optional diagonal band — O(n·band) instead of O(n·m) — which is
//! exact whenever the true alignment stays within the band (always the case
//! for near-identical contigs, the validation use-case).

use crate::sequence::DnaSequence;

/// Scoring scheme (match positive, mismatch/gap negative).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scoring {
    /// Score for a matching base pair.
    pub matches: i32,
    /// Score for a mismatching pair.
    pub mismatch: i32,
    /// Score per gap base.
    pub gap: i32,
}

impl Default for Scoring {
    fn default() -> Self {
        Scoring { matches: 1, mismatch: -1, gap: -2 }
    }
}

/// Result of an alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alignment {
    /// Total alignment score.
    pub score: i32,
    /// Matching positions.
    pub matches: usize,
    /// Mismatching positions.
    pub mismatches: usize,
    /// Gap bases (insertions + deletions).
    pub gaps: usize,
}

impl Alignment {
    /// Identity over aligned columns, in `[0, 1]`.
    pub fn identity(&self) -> f64 {
        let cols = self.matches + self.mismatches + self.gaps;
        if cols == 0 {
            1.0
        } else {
            self.matches as f64 / cols as f64
        }
    }
}

/// Global alignment restricted to a diagonal band of half-width `band`.
///
/// Returns `None` when the band cannot connect the corners (length
/// difference exceeds the band).
///
/// # Examples
///
/// ```
/// use pim_genome::align::{banded_global, Scoring};
///
/// let a: pim_genome::DnaSequence = "ACGTACGT".parse()?;
/// let b: pim_genome::DnaSequence = "ACGTTCGT".parse()?;
/// let aln = banded_global(&a, &b, 4, Scoring::default()).expect("band wide enough");
/// assert_eq!(aln.mismatches, 1);
/// assert!(aln.identity() > 0.8);
/// # Ok::<(), pim_genome::GenomeError>(())
/// ```
pub fn banded_global(
    a: &DnaSequence,
    b: &DnaSequence,
    band: usize,
    scoring: Scoring,
) -> Option<Alignment> {
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > band {
        return None;
    }
    const NEG: i32 = i32::MIN / 4;
    let width = 2 * band + 1;
    // dp[i][d] = best score aligning a[..i] with b[..j], j = i + d − band.
    let mut prev = vec![NEG; width];
    let mut prev_dir: Vec<Vec<u8>> = Vec::with_capacity(n + 1); // 0 diag, 1 up (gap in b), 2 left (gap in a)
    let mut dirs0 = vec![0u8; width];
    // Row 0: only gaps in a.
    for d in 0..width {
        let j = d as isize - band as isize;
        if (0..=m as isize).contains(&j) {
            prev[d] = scoring.gap * j as i32;
            dirs0[d] = 2;
        }
    }
    prev_dir.push(dirs0);
    for i in 1..=n {
        let mut cur = vec![NEG; width];
        let mut dirs = vec![0u8; width];
        for d in 0..width {
            let j = i as isize + d as isize - band as isize;
            if j < 0 || j > m as isize {
                continue;
            }
            let j = j as usize;
            if j == 0 {
                // First column: only gaps in b.
                cur[d] = scoring.gap * i as i32;
                dirs[d] = 1;
                continue;
            }
            let mut best = NEG;
            let mut dir = 0u8;
            // Diagonal: prev row, same d (j−1 = (i−1) + d − band).
            let sub = if a.get(i - 1) == b.get(j - 1) { scoring.matches } else { scoring.mismatch };
            if prev[d] > NEG && prev[d] + sub > best {
                best = prev[d] + sub;
                dir = 0;
            }
            // Up: gap in b (j fixed) → prev row, d+1.
            if d + 1 < width && prev[d + 1] > NEG && prev[d + 1] + scoring.gap > best {
                best = prev[d + 1] + scoring.gap;
                dir = 1;
            }
            // Left: gap in a (i fixed) → same row, d−1.
            if d >= 1 && cur[d - 1] > NEG && cur[d - 1] + scoring.gap > best {
                best = cur[d - 1] + scoring.gap;
                dir = 2;
            }
            cur[d] = best;
            dirs[d] = dir;
        }
        prev_dir.push(dirs);
        prev = cur;
    }
    // End cell: i = n, j = m → d = m − n + band.
    let d_end = (m as isize - n as isize + band as isize) as usize;
    let score = prev[d_end];
    if score <= NEG {
        return None;
    }
    // Traceback.
    let (mut i, mut d) = (n, d_end);
    let mut matches = 0;
    let mut mismatches = 0;
    let mut gaps = 0;
    loop {
        let j = (i as isize + d as isize - band as isize) as usize;
        if i == 0 && j == 0 {
            break;
        }
        match prev_dir[i][d] {
            0 => {
                if a.get(i - 1) == b.get(j - 1) {
                    matches += 1;
                } else {
                    mismatches += 1;
                }
                i -= 1;
            }
            1 => {
                gaps += 1;
                i -= 1;
                d += 1;
            }
            _ => {
                gaps += 1;
                d -= 1;
            }
        }
    }
    Some(Alignment { score, matches, mismatches, gaps })
}

/// Identity of the best global alignment within the band (`None` if the
/// band is too narrow for the length difference).
pub fn identity(a: &DnaSequence, b: &DnaSequence, band: usize) -> Option<f64> {
    banded_global(a, b, band, Scoring::default()).map(|aln| aln.identity())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn seq(s: &str) -> DnaSequence {
        s.parse().unwrap()
    }

    #[test]
    fn identical_sequences_align_perfectly() {
        let a = seq("ACGTACGTTTGG");
        let aln = banded_global(&a, &a, 3, Scoring::default()).unwrap();
        assert_eq!(aln.matches, a.len());
        assert_eq!(aln.mismatches, 0);
        assert_eq!(aln.gaps, 0);
        assert_eq!(aln.identity(), 1.0);
        assert_eq!(aln.score, a.len() as i32);
    }

    #[test]
    fn single_substitution_detected() {
        let a = seq("ACGTACGT");
        let b = seq("ACGTTCGT");
        let aln = banded_global(&a, &b, 4, Scoring::default()).unwrap();
        assert_eq!(aln.matches, 7);
        assert_eq!(aln.mismatches, 1);
        assert_eq!(aln.gaps, 0);
    }

    #[test]
    fn single_deletion_costs_one_gap() {
        let a = seq("ACGTACGT");
        let b = seq("ACGACGT"); // T deleted
        let aln = banded_global(&a, &b, 3, Scoring::default()).unwrap();
        assert_eq!(aln.gaps, 1);
        assert_eq!(aln.mismatches, 0);
        assert_eq!(aln.matches, 7);
    }

    #[test]
    fn band_too_narrow_returns_none() {
        let a = seq("ACGTACGTACGT");
        let b = seq("ACG");
        assert!(banded_global(&a, &b, 2, Scoring::default()).is_none());
    }

    #[test]
    fn long_random_sequences_self_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(90);
        let a = DnaSequence::random(&mut rng, 500);
        assert_eq!(identity(&a, &a, 8).unwrap(), 1.0);
    }

    #[test]
    fn noisy_copy_has_high_but_imperfect_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(91);
        let a = DnaSequence::random(&mut rng, 400);
        let mut b = a.clone();
        for pos in [50usize, 150, 250, 350] {
            b.set_base(pos, b.get(pos).complement());
        }
        let id = identity(&a, &b, 8).unwrap();
        assert!((0.98..1.0).contains(&id), "identity {id}");
    }

    #[test]
    fn empty_sequences() {
        let e = DnaSequence::new();
        let aln = banded_global(&e, &e, 2, Scoring::default()).unwrap();
        assert_eq!(aln.identity(), 1.0);
        assert_eq!(aln.score, 0);
    }
}
