//! Error type for the genome toolkit.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, GenomeError>;

/// Errors raised by sequence parsing, k-mer handling, and assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenomeError {
    /// A character outside `ACGTacgt` appeared in sequence input.
    InvalidBase {
        /// The offending character.
        ch: char,
        /// Byte position in the input.
        position: usize,
    },
    /// A k value outside the supported `1..=32` range.
    UnsupportedK {
        /// The requested k.
        k: usize,
    },
    /// A sequence was too short to yield even one k-mer.
    SequenceTooShort {
        /// Sequence length.
        len: usize,
        /// Required minimum length.
        needed: usize,
    },
    /// FASTA input was malformed.
    MalformedFasta {
        /// Line number (1-based).
        line: usize,
        /// What went wrong.
        reason: &'static str,
    },
    /// An I/O error, stringified (keeps the error type `Clone + Eq`).
    Io(String),
}

impl fmt::Display for GenomeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenomeError::InvalidBase { ch, position } => {
                write!(f, "invalid base {ch:?} at position {position}")
            }
            GenomeError::UnsupportedK { k } => {
                write!(f, "unsupported k-mer length {k} (supported: 1..=32)")
            }
            GenomeError::SequenceTooShort { len, needed } => {
                write!(f, "sequence of length {len} too short (need at least {needed})")
            }
            GenomeError::MalformedFasta { line, reason } => {
                write!(f, "malformed fasta at line {line}: {reason}")
            }
            GenomeError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for GenomeError {}

impl From<std::io::Error> for GenomeError {
    fn from(e: std::io::Error) -> Self {
        GenomeError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(GenomeError::InvalidBase { ch: 'N', position: 4 }.to_string().contains("'N'"));
        assert!(GenomeError::UnsupportedK { k: 40 }.to_string().contains("40"));
        assert!(GenomeError::SequenceTooShort { len: 3, needed: 16 }.to_string().contains("16"));
    }

    #[test]
    fn io_errors_convert() {
        let e: GenomeError = std::io::Error::other("boom").into();
        assert!(matches!(e, GenomeError::Io(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GenomeError>();
    }
}
