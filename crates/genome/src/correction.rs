//! K-mer-spectrum read error correction.
//!
//! An extension beyond the paper: real assemblers (Velvet's `tour bus`,
//! Euler-SR's spectral alignment) correct sequencing errors before or
//! during graph construction. We implement the classic spectral approach:
//! k-mers with frequency ≥ a *solid* threshold are trusted; a read position
//! whose surrounding k-mers are weak is repaired by the single-base
//! substitution that makes the most covering k-mers solid. This pairs
//! naturally with the PIM hash table — each candidate test is one more
//! `PIM_XNOR` probe.

use crate::base::DnaBase;
use crate::hash_table::KmerCounter;
use crate::kmer::{Kmer, KmerIter};
use crate::reads::Read;
use crate::sequence::DnaSequence;

/// Outcome counters of a correction pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CorrectionStats {
    /// Reads scanned.
    pub reads: u64,
    /// Positions repaired.
    pub corrected: u64,
    /// Positions flagged weak but with no unambiguous repair.
    pub uncorrectable: u64,
}

/// Spectral read corrector.
///
/// # Examples
///
/// ```
/// use pim_genome::correction::ReadCorrector;
///
/// let c = ReadCorrector::new(15, 3);
/// assert_eq!(c.solid_threshold(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadCorrector {
    k: usize,
    solid: u64,
}

impl ReadCorrector {
    /// Creates a corrector: k-mers with count ≥ `solid` are trusted.
    ///
    /// # Panics
    ///
    /// Panics if `solid == 0`.
    pub fn new(k: usize, solid: u64) -> Self {
        assert!(solid >= 1, "solid threshold must be positive");
        ReadCorrector { k, solid }
    }

    /// The solid-k-mer threshold.
    pub fn solid_threshold(&self) -> u64 {
        self.solid
    }

    /// The k in use.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Corrects a read set in place against its own k-mer spectrum.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GenomeError::UnsupportedK`] for invalid k.
    pub fn correct_reads(&self, reads: &mut [Read]) -> crate::Result<CorrectionStats> {
        let mut counter = KmerCounter::new(self.k)?;
        for r in reads.iter() {
            counter.count_sequence(&r.seq)?;
        }
        let mut stats = CorrectionStats::default();
        for r in reads.iter_mut() {
            stats.reads += 1;
            let (seq, st) = self.correct_sequence(&r.seq, &counter)?;
            stats.corrected += st.corrected;
            stats.uncorrectable += st.uncorrectable;
            r.seq = seq;
        }
        Ok(stats)
    }

    /// Corrects one sequence against a trusted spectrum, returning the
    /// repaired sequence and per-sequence counters.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GenomeError::UnsupportedK`] for invalid k.
    pub fn correct_sequence(
        &self,
        seq: &DnaSequence,
        spectrum: &KmerCounter,
    ) -> crate::Result<(DnaSequence, CorrectionStats)> {
        let mut stats = CorrectionStats::default();
        if seq.len() < self.k {
            return Ok((seq.clone(), stats));
        }
        let mut out = seq.clone();
        // Weak positions: those covered by no solid k-mer.
        let weak = self.weak_positions(&out, spectrum)?;
        for pos in weak {
            match self.best_substitution(&out, pos, spectrum)? {
                Some(base) => {
                    out.set_base(pos, base);
                    stats.corrected += 1;
                }
                None => stats.uncorrectable += 1,
            }
        }
        Ok((out, stats))
    }

    /// Positions not covered by any solid k-mer.
    fn weak_positions(
        &self,
        seq: &DnaSequence,
        spectrum: &KmerCounter,
    ) -> crate::Result<Vec<usize>> {
        let n = seq.len();
        let mut covered = vec![false; n];
        for (i, kmer) in KmerIter::new(seq, self.k)?.enumerate() {
            if spectrum.count(&kmer) >= self.solid {
                for c in covered.iter_mut().skip(i).take(self.k) {
                    *c = true;
                }
            }
        }
        Ok((0..n).filter(|&i| !covered[i]).collect())
    }

    /// The unique substitution at `pos` that maximizes solid coverage, if
    /// it strictly beats both the original and every other candidate.
    fn best_substitution(
        &self,
        seq: &DnaSequence,
        pos: usize,
        spectrum: &KmerCounter,
    ) -> crate::Result<Option<DnaBase>> {
        let original = seq.get(pos);
        let baseline = self.solid_cover(seq, pos, spectrum, original)?;
        let mut best: Option<(DnaBase, usize)> = None;
        let mut tie = false;
        for cand in DnaBase::ALL {
            if cand == original {
                continue;
            }
            let cover = self.solid_cover(seq, pos, spectrum, cand)?;
            match best {
                Some((_, c)) if cover > c => {
                    best = Some((cand, cover));
                    tie = false;
                }
                Some((_, c)) if cover == c && cover > 0 => tie = true,
                None => best = Some((cand, cover)),
                _ => {}
            }
        }
        Ok(match best {
            Some((base, cover)) if cover > baseline && !tie => Some(base),
            _ => None,
        })
    }

    /// Number of solid k-mers covering `pos` when it is set to `base`.
    fn solid_cover(
        &self,
        seq: &DnaSequence,
        pos: usize,
        spectrum: &KmerCounter,
        base: DnaBase,
    ) -> crate::Result<usize> {
        let lo = pos.saturating_sub(self.k - 1);
        let hi = (pos + 1).min(seq.len().saturating_sub(self.k - 1));
        let mut count = 0;
        for start in lo..hi {
            let mut bases: Vec<DnaBase> = (0..self.k).map(|i| seq.get(start + i)).collect();
            bases[pos - start] = base;
            let kmer = Kmer::from_bases(&bases)?;
            if spectrum.count(&kmer) >= self.solid {
                count += 1;
            }
        }
        Ok(count)
    }
}

impl DnaSequence {
    /// Replaces the base at `pos` (correction support).
    ///
    /// # Panics
    ///
    /// Panics if `pos >= self.len()`.
    pub fn set_base(&mut self, pos: usize, base: DnaBase) {
        assert!(pos < self.len(), "base index out of range");
        let mut out = DnaSequence::with_capacity(self.len());
        for i in 0..self.len() {
            out.push(if i == pos { base } else { self.get(i) });
        }
        *self = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reads::ReadSimulator;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn repairs_a_single_planted_error() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let genome = DnaSequence::random(&mut rng, 600);
        // Build a clean spectrum from the genome.
        let k = 15;
        let mut spectrum = KmerCounter::new(k).unwrap();
        for _ in 0..3 {
            spectrum.count_sequence(&genome).unwrap(); // count 3 ⇒ solid
        }
        // Corrupt one base mid-read.
        let mut read = genome.subsequence(100, 80);
        let truth = read.clone();
        let bad = read.get(40).complement();
        read.set_base(40, bad);
        let corrector = ReadCorrector::new(k, 3);
        let (fixed, stats) = corrector.correct_sequence(&read, &spectrum).unwrap();
        assert_eq!(fixed, truth);
        assert_eq!(stats.corrected, 1);
        assert_eq!(stats.uncorrectable, 0);
    }

    #[test]
    fn clean_reads_are_untouched() {
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        let genome = DnaSequence::random(&mut rng, 500);
        let mut spectrum = KmerCounter::new(13).unwrap();
        for _ in 0..3 {
            spectrum.count_sequence(&genome).unwrap();
        }
        let read = genome.subsequence(50, 60);
        let (fixed, stats) = ReadCorrector::new(13, 3).correct_sequence(&read, &spectrum).unwrap();
        assert_eq!(fixed, read);
        assert_eq!(stats.corrected, 0);
    }

    #[test]
    fn correcting_noisy_readset_shrinks_the_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let genome = DnaSequence::random(&mut rng, 1500);
        let mut reads =
            ReadSimulator::new(80, 35.0).with_error_rate(0.004).simulate(&genome, &mut rng);
        let k = 17;
        let distinct_before = {
            let mut c = KmerCounter::new(k).unwrap();
            for r in &reads {
                c.count_sequence(&r.seq).unwrap();
            }
            c.distinct()
        };
        let stats = ReadCorrector::new(k, 3).correct_reads(&mut reads).unwrap();
        assert!(stats.corrected > 0, "no corrections happened");
        let distinct_after = {
            let mut c = KmerCounter::new(k).unwrap();
            for r in &reads {
                c.count_sequence(&r.seq).unwrap();
            }
            c.distinct()
        };
        // Error k-mers removed ⇒ spectrum closer to the genome's true size.
        assert!(distinct_after < distinct_before, "{distinct_after} !< {distinct_before}");
        let true_distinct = genome.len() - k + 1;
        let excess_before = distinct_before - true_distinct;
        let excess_after = distinct_after.saturating_sub(true_distinct);
        assert!(
            (excess_after as f64) < 0.5 * excess_before as f64,
            "excess {excess_before} -> {excess_after}"
        );
    }

    #[test]
    fn short_sequences_pass_through() {
        let seq: DnaSequence = "ACGT".parse().unwrap();
        let spectrum = KmerCounter::new(15).unwrap();
        let (out, stats) = ReadCorrector::new(15, 2).correct_sequence(&seq, &spectrum).unwrap();
        assert_eq!(out, seq);
        assert_eq!(stats.corrected, 0);
    }

    #[test]
    fn ambiguous_positions_stay_uncorrected() {
        // A spectrum with no solid k-mers at all: nothing can be trusted,
        // so nothing is repaired and positions count as uncorrectable.
        let mut rng = ChaCha8Rng::seed_from_u64(34);
        let read = DnaSequence::random(&mut rng, 40);
        let spectrum = KmerCounter::new(15).unwrap(); // empty
        let (out, stats) = ReadCorrector::new(15, 2).correct_sequence(&read, &spectrum).unwrap();
        assert_eq!(out, read);
        assert_eq!(stats.corrected, 0);
        assert_eq!(stats.uncorrectable as usize, read.len());
    }

    #[test]
    fn set_base_replaces_one_position() {
        let mut s: DnaSequence = "ACGT".parse().unwrap();
        s.set_base(2, DnaBase::T);
        assert_eq!(s.to_string(), "ACTT");
    }
}
