//! Property-based tests for the genome toolkit's core invariants.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use pim_genome::assemble::{AssemblyConfig, SoftwareAssembler, Traversal};
use pim_genome::base::DnaBase;
use pim_genome::debruijn::DeBruijnGraph;
use pim_genome::euler::{eulerian_trails, trails_cover_all_edges, EulerAlgorithm};
use pim_genome::hash_table::KmerCounter;
use pim_genome::kmer::{Kmer, KmerIter};
use pim_genome::sequence::DnaSequence;

fn dna(min: usize, max: usize) -> impl Strategy<Value = DnaSequence> {
    proptest::collection::vec(0u8..4, min..=max)
        .prop_map(|codes| codes.into_iter().map(DnaBase::from_code).collect())
}

proptest! {
    #[test]
    fn sequence_string_roundtrip(seq in dna(0, 200)) {
        let text = seq.to_string();
        let parsed: DnaSequence = text.parse().unwrap();
        prop_assert_eq!(parsed, seq);
    }

    #[test]
    fn reverse_complement_involution(seq in dna(0, 120)) {
        prop_assert_eq!(seq.reverse_complement().reverse_complement(), seq);
    }

    #[test]
    fn kmer_pack_roundtrip(seq in dna(1, 32)) {
        let k = seq.len();
        let kmer = Kmer::from_sequence(&seq, 0, k).unwrap();
        prop_assert_eq!(kmer.to_sequence(), seq);
        prop_assert_eq!(Kmer::from_packed(kmer.packed(), k).unwrap(), kmer);
    }

    #[test]
    fn kmer_counts_sum_to_window_count(seq in dna(16, 200), k in 2usize..=16) {
        let mut c = KmerCounter::new(k).unwrap();
        c.count_sequence(&seq).unwrap();
        let windows = seq.len() + 1 - k;
        prop_assert_eq!(c.total() as usize, windows);
        let from_entries: u64 = c.entries().iter().map(|e| e.count).sum();
        prop_assert_eq!(from_entries as usize, windows);
    }

    #[test]
    fn debruijn_edge_count_equals_distinct_kmers(seq in dna(20, 150), k in 3usize..=10) {
        let mut c = KmerCounter::new(k).unwrap();
        c.count_sequence(&seq).unwrap();
        let g = DeBruijnGraph::from_counter(&c, 1);
        prop_assert_eq!(g.edge_count(), c.distinct());
        // Balance always sums to zero.
        prop_assert_eq!(g.balance().iter().sum::<isize>(), 0);
    }

    #[test]
    fn euler_trails_cover_every_edge_exactly_once(seq in dna(20, 150), k in 3usize..=8) {
        let mut c = KmerCounter::new(k).unwrap();
        c.count_sequence(&seq).unwrap();
        let g = DeBruijnGraph::from_counter(&c, 1);
        for alg in [EulerAlgorithm::Hierholzer, EulerAlgorithm::Fleury] {
            let trails = eulerian_trails(&g, alg);
            prop_assert!(trails_cover_all_edges(&g, &trails), "{:?}", alg);
            // Every consecutive pair in a trail really is a graph edge.
            for t in &trails {
                for w in t.windows(2) {
                    prop_assert!(g.out_edges(w[0]).iter().any(|e| e.to == w[1]));
                }
            }
        }
    }

    #[test]
    fn assembled_contigs_contain_only_input_kmers(seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let genome = DnaSequence::random(&mut rng, 600);
        let k = 15;
        let asm = SoftwareAssembler::new(AssemblyConfig::new(k)).assemble_sequence(&genome).unwrap();
        let mut genomic = std::collections::HashSet::new();
        genomic.extend(KmerIter::new(&genome, k).unwrap().map(|km| km.packed()));
        for c in &asm.contigs {
            for km in KmerIter::new(c.sequence(), k).unwrap() {
                prop_assert!(genomic.contains(&km.packed()), "foreign k-mer {km}");
            }
        }
    }

    #[test]
    fn unitigs_and_euler_cover_same_kmer_set(seed in 0u64..500) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xABCD);
        let genome = DnaSequence::random(&mut rng, 400);
        let k = 13;
        let euler = SoftwareAssembler::new(AssemblyConfig::new(k)).assemble_sequence(&genome).unwrap();
        let unitig = SoftwareAssembler::new(
            AssemblyConfig::new(k).with_traversal(Traversal::Unitigs),
        )
        .assemble_sequence(&genome)
        .unwrap();
        let kmers = |contigs: &[pim_genome::Contig]| {
            let mut s = std::collections::HashSet::new();
            for c in contigs {
                s.extend(KmerIter::new(c.sequence(), k).unwrap().map(|km| km.packed()));
            }
            s
        };
        prop_assert_eq!(kmers(&euler.contigs), kmers(&unitig.contigs));
    }
}

// Small random multigraphs — duplicate k-mers (parallel edges) and
// homopolymers like AAAA (self-loops) included — never panic the simplifier,
// and it only ever removes edges. Pins the walk guards that replaced the
// `in_degree == 1` pop/expect.
proptest! {
    #[test]
    fn simplify_never_panics_on_small_multigraphs(
        packed in proptest::collection::vec(0u64..256, 1..40),
        bound in 1usize..12,
    ) {
        let mut g = DeBruijnGraph::from_kmers(4, std::iter::empty::<Kmer>());
        for &p in &packed {
            g.add_kmer(Kmer::from_packed(p, 4).unwrap(), 1 + p % 5);
        }
        let (clean, _) = pim_genome::simplify::Simplifier::new(bound).simplify(&g);
        prop_assert!(clean.edge_count() <= g.edge_count());
        // Degree bookkeeping of the output stays self-consistent.
        let total_out: usize = (0..clean.node_count()).map(|v| clean.out_degree(v)).sum();
        let total_in: usize = (0..clean.node_count()).map(|v| clean.in_degree(v)).sum();
        prop_assert_eq!(total_out, clean.edge_count());
        prop_assert_eq!(total_in, clean.edge_count());
    }
}
