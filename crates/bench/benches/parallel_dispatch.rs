//! Wall-clock of the parallel dispatcher vs the serial reference on a
//! multi-sub-array instruction stream.
//!
//! Each of the 8 partitions carries the same per-sub-array program volume,
//! so the ideal speedup at `workers = 8` is the host's core count (capped
//! at 8). The acceptance bar — ≥ 2× over serial at 8 partitions — is only
//! reachable on a multi-core host; `dispatch_host_parallelism` prints what
//! this machine offers. Correctness (byte-identical state and totals for
//! any worker count) is asserted by the test suites, and spot-checked here
//! before timing starts.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pim_assembler::dispatch::ParallelDispatcher;
use pim_assembler::isa::{AapInstruction, InstructionStream};
use pim_dram::address::{RowAddr, SubarrayId};
use pim_dram::bitrow::BitRow;
use pim_dram::controller::Controller;
use pim_dram::geometry::DramGeometry;
use pim_dram::sense_amp::SaMode;

const PARTITIONS: usize = 8;
const PROGRAMS_PER_PARTITION: usize = 256;

fn seeded_controller(g: DramGeometry, ids: &[SubarrayId]) -> Controller {
    let mut ctrl = Controller::new(g);
    let cols = g.cols;
    for (n, &id) in ids.iter().enumerate() {
        for row in 0..4usize {
            let data = BitRow::from_fn(cols, |i| (i + row + n) % 3 == 0);
            ctrl.write_row(id, row, &data).unwrap();
        }
    }
    ctrl
}

/// `PROGRAMS_PER_PARTITION` copy-copy-XNOR programs per sub-array,
/// interleaved across partitions the way a real stage issues them.
fn workload(g: &DramGeometry, ids: &[SubarrayId]) -> InstructionStream {
    let cols = g.cols;
    let x0 = RowAddr(g.compute_row(0));
    let x1 = RowAddr(g.compute_row(1));
    let mut stream = InstructionStream::new();
    for round in 0..PROGRAMS_PER_PARTITION {
        for &id in ids {
            stream.extend([
                AapInstruction::Copy { subarray: id, src: RowAddr(round % 4), dst: x0, size: cols },
                AapInstruction::Copy {
                    subarray: id,
                    src: RowAddr((round + 1) % 4),
                    dst: x1,
                    size: cols,
                },
                AapInstruction::TwoSrc {
                    subarray: id,
                    srcs: [x0, x1],
                    dst: RowAddr(8 + round % 4),
                    mode: SaMode::Xnor,
                    size: cols,
                },
            ]);
        }
    }
    stream
}

fn bench_dispatch(c: &mut Criterion) {
    let g = DramGeometry::paper_assembly();
    let ids: Vec<SubarrayId> =
        (0..PARTITIONS).map(|i| SubarrayId::from_linear_index(&g, i)).collect();
    let stream = workload(&g, &ids);

    // Spot-check the equivalence contract before timing anything.
    let mut a = seeded_controller(g, &ids);
    let mut b = seeded_controller(g, &ids);
    ParallelDispatcher::serial().execute(&mut a, &stream).unwrap();
    ParallelDispatcher::with_workers(PARTITIONS).execute(&mut b, &stream).unwrap();
    assert_eq!(*a.stats(), *b.stats(), "parallel != serial totals");

    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    c.bench_function("dispatch_host_parallelism", |bch| bch.iter(|| black_box(host)));

    let cases: Vec<(String, ParallelDispatcher)> = [1usize, 2, 4, 8]
        .into_iter()
        .map(|w| {
            let label = if w == 1 { "serial".to_string() } else { format!("workers_{w}") };
            (label, ParallelDispatcher::with_workers(w))
        })
        .collect();
    for (label, dispatcher) in cases {
        let mut ctrl = seeded_controller(g, &ids);
        c.bench_function(&format!("dispatch_8x256_{label}"), |bch| {
            bch.iter(|| dispatcher.execute(&mut ctrl, black_box(&stream)).unwrap())
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_dispatch
}
criterion_main!(benches);
