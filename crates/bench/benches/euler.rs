//! Ablation: Hierholzer (linear-time) vs Fleury (bridge-avoiding, O(E²))
//! Eulerian traversal — why a production deployment would prefer the
//! former even though the paper's pseudocode names the latter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pim_genome::debruijn::DeBruijnGraph;
use pim_genome::euler::{eulerian_trails, EulerAlgorithm};
use pim_genome::hash_table::KmerCounter;
use pim_genome::sequence::DnaSequence;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn graph(len: usize) -> DeBruijnGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let seq = DnaSequence::random(&mut rng, len);
    let mut c = KmerCounter::new(11).unwrap();
    c.count_sequence(&seq).unwrap();
    DeBruijnGraph::from_counter(&c, 1)
}

fn bench_euler(c: &mut Criterion) {
    let mut group = c.benchmark_group("euler_traversal");
    for len in [200usize, 600, 1200] {
        let g = graph(len);
        group.bench_with_input(BenchmarkId::new("hierholzer", len), &g, |b, g| {
            b.iter(|| black_box(eulerian_trails(g, EulerAlgorithm::Hierholzer)))
        });
        group.bench_with_input(BenchmarkId::new("fleury", len), &g, |b, g| {
            b.iter(|| black_box(eulerian_trails(g, EulerAlgorithm::Fleury)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_euler
}
criterion_main!(benches);
