//! Criterion micro-benchmarks of the PR 3 hot path: the discard-read AAP
//! variants, the stream executor, and the compiled-template executor.
//!
//! These are *host-time* measurements of the simulator's steady-state inner
//! loop — the path `pim-asm bench` reports on — so the interesting numbers
//! are relative: the discard variants vs their sensed counterparts in
//! `bulk_ops`, and template execution vs re-interpreting an instruction
//! stream.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pim_assembler::exec::StreamExecutor;
use pim_assembler::programs::xnor_program;
use pim_assembler::template::{CompiledTemplate, Kernel, TemplateKey};
use pim_dram::address::RowAddr;
use pim_dram::bitrow::BitRow;
use pim_dram::controller::Controller;
use pim_dram::geometry::DramGeometry;
use pim_dram::sense_amp::SaMode;

fn setup() -> (Controller, pim_dram::SubarrayId) {
    let ctrl = Controller::new(DramGeometry::paper_assembly());
    let id = ctrl.subarray_handle(0, 0, 0, 0).unwrap();
    (ctrl, id)
}

/// Two-row activation with the sensed output discarded — the scratch-row
/// path every bulk executor takes.
fn bench_op2_discard(c: &mut Criterion) {
    let (mut ctrl, id) = setup();
    let cols = ctrl.geometry().cols;
    ctrl.write_row(id, 1, &BitRow::from_fn(cols, |i| i % 2 == 0)).unwrap();
    ctrl.write_row(id, 2, &BitRow::from_fn(cols, |i| i % 3 == 0)).unwrap();
    c.bench_function("hot_op2_discard_xnor", |b| {
        b.iter(|| {
            ctrl.aap_copy(id, 1, ctrl.compute_row(0)).unwrap();
            ctrl.aap_copy(id, 2, ctrl.compute_row(1)).unwrap();
            ctrl.aap2_discard(id, SaMode::Xnor, [ctrl.compute_row(0), ctrl.compute_row(1)], 5)
                .unwrap();
            black_box(&ctrl);
        })
    });
}

/// Triple-row activation with the carry discarded.
fn bench_op3_discard(c: &mut Criterion) {
    let (mut ctrl, id) = setup();
    let cols = ctrl.geometry().cols;
    for r in 1..=3usize {
        ctrl.write_row(id, r, &BitRow::from_fn(cols, |i| (i + r) % 3 == 0)).unwrap();
    }
    c.bench_function("hot_op3_discard_carry", |b| {
        b.iter(|| {
            ctrl.aap_copy(id, 1, ctrl.compute_row(0)).unwrap();
            ctrl.aap_copy(id, 2, ctrl.compute_row(1)).unwrap();
            ctrl.aap_copy(id, 3, ctrl.compute_row(2)).unwrap();
            ctrl.aap3_carry_discard(
                id,
                [ctrl.compute_row(0), ctrl.compute_row(1), ctrl.compute_row(2)],
                9,
            )
            .unwrap();
            black_box(&ctrl);
        })
    });
}

/// The stream executor replaying a pre-built XNOR program.
fn bench_stream_exec(c: &mut Criterion) {
    let (mut ctrl, id) = setup();
    let cols = ctrl.geometry().cols;
    ctrl.write_row(id, 1, &BitRow::from_fn(cols, |i| i % 2 == 0)).unwrap();
    ctrl.write_row(id, 2, &BitRow::from_fn(cols, |i| i % 3 == 0)).unwrap();
    let program = xnor_program(
        id,
        RowAddr(1),
        RowAddr(2),
        RowAddr(5),
        ctrl.compute_row(0),
        ctrl.compute_row(1),
        cols,
    );
    c.bench_function("hot_stream_exec_xnor", |b| {
        b.iter(|| {
            StreamExecutor::execute_stream(&mut ctrl, black_box(&program)).unwrap();
        })
    });
}

/// The compiled template executing the same kernel with zero per-call
/// instruction-vector construction.
fn bench_template_exec(c: &mut Criterion) {
    let (mut ctrl, id) = setup();
    let cols = ctrl.geometry().cols;
    ctrl.write_row(id, 1, &BitRow::from_fn(cols, |i| i % 2 == 0)).unwrap();
    ctrl.write_row(id, 2, &BitRow::from_fn(cols, |i| i % 3 == 0)).unwrap();
    let template = CompiledTemplate::compile(TemplateKey::new(Kernel::Xnor, cols, cols));
    let rows = [RowAddr(1), RowAddr(2), RowAddr(5), ctrl.compute_row(0), ctrl.compute_row(1)];
    c.bench_function("hot_template_exec_xnor", |b| {
        b.iter(|| {
            template.execute(&mut ctrl, id, black_box(&rows)).unwrap();
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_op2_discard, bench_op3_discard, bench_stream_exec, bench_template_exec
}
criterion_main!(benches);
