//! Criterion micro-benchmarks of the functional in-DRAM primitives, plus
//! the single-cycle-XNOR vs Ambit-emulated-XNOR ablation.
//!
//! Host time here measures the *simulator*; the simulated cycle counts that
//! the paper compares are printed by `fig3b_throughput`. The ablation shows
//! both: PIM-Assembler's XNOR issues 3 commands where the Ambit emulation
//! issues 7, and host time tracks the command count.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pim_dram::bitrow::BitRow;
use pim_dram::controller::Controller;
use pim_dram::geometry::DramGeometry;
use pim_dram::sense_amp::SaMode;

fn setup() -> (Controller, pim_dram::SubarrayId) {
    let ctrl = Controller::new(DramGeometry::paper_assembly());
    let id = ctrl.subarray_handle(0, 0, 0, 0).unwrap();
    (ctrl, id)
}

fn bench_pa_xnor(c: &mut Criterion) {
    let (mut ctrl, id) = setup();
    let cols = ctrl.geometry().cols;
    ctrl.write_row(id, 1, &BitRow::from_fn(cols, |i| i % 2 == 0)).unwrap();
    ctrl.write_row(id, 2, &BitRow::from_fn(cols, |i| i % 3 == 0)).unwrap();
    c.bench_function("pa_xnor_row_3_commands", |b| {
        b.iter(|| {
            ctrl.aap_copy(id, 1, ctrl.compute_row(0)).unwrap();
            ctrl.aap_copy(id, 2, ctrl.compute_row(1)).unwrap();
            black_box(ctrl.aap2_xnor(id, [ctrl.compute_row(0), ctrl.compute_row(1)], 5).unwrap());
        })
    });
}

/// Ambit has no native X(N)OR: it composes it from TRA AND/OR plus DCC NOT
/// passes — 7 command slots on the same array (§I). Emulated here with the
/// equivalent command count through the same controller.
fn bench_ambit_emulated_xnor(c: &mut Criterion) {
    let (mut ctrl, id) = setup();
    let cols = ctrl.geometry().cols;
    ctrl.write_row(id, 1, &BitRow::from_fn(cols, |i| i % 2 == 0)).unwrap();
    ctrl.write_row(id, 2, &BitRow::from_fn(cols, |i| i % 3 == 0)).unwrap();
    ctrl.write_row(id, 3, &BitRow::ones(cols)).unwrap(); // control row C1
    ctrl.write_row(id, 4, &BitRow::zeros(cols)).unwrap(); // control row C0
    c.bench_function("ambit_emulated_xnor_row_7_commands", |b| {
        b.iter(|| {
            let (x1, x2, x3) = (ctrl.compute_row(0), ctrl.compute_row(1), ctrl.compute_row(2));
            // NOT a (DCC emulation: copy + two-row NAND with the ones row).
            ctrl.aap_copy(id, 1, x1).unwrap();
            ctrl.aap_copy(id, 3, x2).unwrap();
            ctrl.aap2(id, SaMode::Nand, [x1, x2], 10).unwrap(); // !a
                                                                // a AND b via TRA with C0.
            ctrl.aap_copy(id, 1, x1).unwrap();
            ctrl.aap_copy(id, 2, x2).unwrap();
            ctrl.aap_copy(id, 4, x3).unwrap();
            black_box(ctrl.aap3_carry(id, [x1, x2, x3], 11).unwrap());
        })
    });
}

fn bench_tra_carry(c: &mut Criterion) {
    let (mut ctrl, id) = setup();
    let cols = ctrl.geometry().cols;
    for r in 1..=3usize {
        ctrl.write_row(id, r, &BitRow::from_fn(cols, |i| (i + r) % 3 == 0)).unwrap();
    }
    c.bench_function("tra_carry_row", |b| {
        b.iter(|| {
            ctrl.aap_copy(id, 1, ctrl.compute_row(0)).unwrap();
            ctrl.aap_copy(id, 2, ctrl.compute_row(1)).unwrap();
            ctrl.aap_copy(id, 3, ctrl.compute_row(2)).unwrap();
            black_box(
                ctrl.aap3_carry(
                    id,
                    [ctrl.compute_row(0), ctrl.compute_row(1), ctrl.compute_row(2)],
                    9,
                )
                .unwrap(),
            );
        })
    });
}

fn bench_row_clone(c: &mut Criterion) {
    let (mut ctrl, id) = setup();
    let cols = ctrl.geometry().cols;
    ctrl.write_row(id, 1, &BitRow::ones(cols)).unwrap();
    c.bench_function("row_clone", |b| {
        b.iter(|| ctrl.aap_copy(id, black_box(1), black_box(2)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_pa_xnor, bench_ambit_emulated_xnor, bench_tra_carry, bench_row_clone
}
criterion_main!(benches);
