//! Ablation of the correlated data mapping (Fig. 6): bucketed hashing vs a
//! naive single-bucket layout. The naive layout scans linearly from row 0,
//! so each query pays O(occupancy) `PIM_XNOR` probes instead of O(bucket).
//! Host time tracks the probe count, and the probe counters themselves are
//! asserted in the integration tests.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pim_assembler::hashmap_stage::PimHashTable;
use pim_assembler::mapping::KmerMapper;
use pim_dram::controller::Controller;
use pim_dram::geometry::DramGeometry;
use pim_genome::kmer::KmerIter;
use pim_genome::sequence::DnaSequence;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn sequence() -> DnaSequence {
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    DnaSequence::random(&mut rng, 1500)
}

fn run_with_bucket_rows(seq: &DnaSequence, bucket_rows: usize) -> u64 {
    let g = DramGeometry::paper_assembly();
    let mut ctrl = Controller::new(g);
    let mut table = PimHashTable::new(KmerMapper::new(&g, 4, bucket_rows));
    for kmer in KmerIter::new(seq, 13).unwrap() {
        table.insert(&mut ctrl, kmer).unwrap();
    }
    table.stats().probes
}

fn bench_correlated_mapping(c: &mut Criterion) {
    let seq = sequence();
    c.bench_function("correlated_bucketed_mapping_8_rows", |b| {
        b.iter(|| black_box(run_with_bucket_rows(&seq, 8)))
    });
}

fn bench_naive_mapping(c: &mut Criterion) {
    let seq = sequence();
    // One giant bucket: every query scans from the region start.
    let giant = 976;
    c.bench_function("naive_single_bucket_mapping", |b| {
        b.iter(|| black_box(run_with_bucket_rows(&seq, giant)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_correlated_mapping, bench_naive_mapping
}
criterion_main!(benches);
