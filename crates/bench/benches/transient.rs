//! Benchmark of the analog behavioral models: transient integration and
//! Monte-Carlo variation trials.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pim_circuits::transient::TransientSim;
use pim_circuits::variation::{ActivationMethod, MonteCarlo};

fn bench_transient(c: &mut Criterion) {
    let sim = TransientSim::nominal_45nm();
    c.bench_function("transient_xnor_four_scenarios", |b| {
        b.iter(|| black_box(sim.xnor_scenarios()))
    });
}

fn bench_monte_carlo(c: &mut Criterion) {
    let mc = MonteCarlo::new(1000, 9);
    c.bench_function("monte_carlo_1000_trials_tra", |b| {
        b.iter(|| black_box(mc.error_rate_pct(ActivationMethod::Tra, 20.0)))
    });
    c.bench_function("monte_carlo_1000_trials_two_row", |b| {
        b.iter(|| black_box(mc.error_rate_pct(ActivationMethod::TwoRow, 20.0)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_transient, bench_monte_carlo
}
criterion_main!(benches);
