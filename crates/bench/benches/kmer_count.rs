//! Benchmark of the from-scratch open-addressing k-mer counter against a
//! `std::collections::HashMap` baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashMap;
use std::hint::black_box;

use pim_genome::hash_table::KmerCounter;
use pim_genome::kmer::KmerIter;
use pim_genome::sequence::DnaSequence;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn sequence() -> DnaSequence {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    DnaSequence::random(&mut rng, 50_000)
}

fn bench_kmer_counter(c: &mut Criterion) {
    let seq = sequence();
    c.bench_function("kmer_counter_50kb_k21", |b| {
        b.iter(|| {
            let mut counter = KmerCounter::new(21).unwrap();
            counter.count_sequence(&seq).unwrap();
            black_box(counter.distinct())
        })
    });
}

fn bench_std_hashmap(c: &mut Criterion) {
    let seq = sequence();
    c.bench_function("std_hashmap_50kb_k21", |b| {
        b.iter(|| {
            let mut map: HashMap<u64, u64> = HashMap::new();
            for kmer in KmerIter::new(&seq, 21).unwrap() {
                *map.entry(kmer.packed()).or_insert(0) += 1;
            }
            black_box(map.len())
        })
    });
}

fn bench_rolling_kmer_iter(c: &mut Criterion) {
    let seq = sequence();
    c.bench_function("kmer_iter_50kb_k21", |b| {
        b.iter(|| {
            black_box(
                KmerIter::new(&seq, 21).unwrap().map(|k| k.packed()).fold(0u64, u64::wrapping_add),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kmer_counter, bench_std_hashmap, bench_rolling_kmer_iter
}
criterion_main!(benches);
