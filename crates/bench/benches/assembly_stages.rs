//! Criterion benchmarks of the three assembly stages through the
//! functional PIM pipeline, one per procedure of Fig. 5.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pim_assembler::config::PimAssemblerConfig;
use pim_assembler::graph_stage::GraphStage;
use pim_assembler::hashmap_stage::PimHashTable;
use pim_assembler::mapping::KmerMapper;
use pim_assembler::pipeline::PimAssembler;
use pim_assembler::traverse_stage::TraverseStage;
use pim_dram::controller::Controller;
use pim_dram::geometry::DramGeometry;
use pim_genome::euler::EulerAlgorithm;
use pim_genome::kmer::KmerIter;
use pim_genome::reads::ReadSimulator;
use pim_genome::sequence::DnaSequence;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn dataset(len: usize) -> (DnaSequence, Vec<pim_genome::Read>) {
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let genome = DnaSequence::random(&mut rng, len);
    let reads = ReadSimulator::new(80, 12.0).simulate(&genome, &mut rng);
    (genome, reads)
}

fn bench_hashmap_stage(c: &mut Criterion) {
    let (genome, _) = dataset(2000);
    let g = DramGeometry::paper_assembly();
    c.bench_function("hashmap_stage_2kb_genome_k15", |b| {
        b.iter(|| {
            let mut ctrl = Controller::new(g);
            let mut table = PimHashTable::new(KmerMapper::new(&g, 8, 8));
            for kmer in KmerIter::new(&genome, 15).unwrap() {
                table.insert(&mut ctrl, kmer).unwrap();
            }
            black_box(table.stats().distinct)
        })
    });
}

fn bench_graph_stage(c: &mut Criterion) {
    let (genome, _) = dataset(2000);
    let g = DramGeometry::paper_assembly();
    let mut ctrl = Controller::new(g);
    let mut table = PimHashTable::new(KmerMapper::new(&g, 8, 8));
    for kmer in KmerIter::new(&genome, 15).unwrap() {
        table.insert(&mut ctrl, kmer).unwrap();
    }
    let region = ctrl.subarray_handle(0, 8, 0, 0).unwrap();
    c.bench_function("graph_stage_2kb_genome_k15", |b| {
        b.iter(|| black_box(GraphStage::build(&mut ctrl, &table, 1, region, 2).unwrap().2))
    });
}

fn bench_traverse_stage(c: &mut Criterion) {
    let (genome, _) = dataset(2000);
    let g = DramGeometry::paper_assembly();
    let mut ctrl = Controller::new(g);
    let mut table = PimHashTable::new(KmerMapper::new(&g, 8, 8));
    for kmer in KmerIter::new(&genome, 15).unwrap() {
        table.insert(&mut ctrl, kmer).unwrap();
    }
    let region = ctrl.subarray_handle(0, 8, 0, 0).unwrap();
    let (graph, _, _) = GraphStage::build(&mut ctrl, &table, 1, region, 2).unwrap();
    let work = ctrl.subarray_handle(0, 9, 0, 0).unwrap();
    c.bench_function("traverse_stage_2kb_genome_k15", |b| {
        b.iter(|| {
            black_box(
                TraverseStage::run(&mut ctrl, &graph, work, EulerAlgorithm::Hierholzer).unwrap().1,
            )
        })
    });
}

fn bench_full_pipeline(c: &mut Criterion) {
    let (_, reads) = dataset(1500);
    c.bench_function("full_pipeline_1500bp_k15", |b| {
        b.iter(|| {
            let mut asm = PimAssembler::new(PimAssemblerConfig::small_test(15));
            black_box(asm.assemble(&reads).unwrap().assembly.stats)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_hashmap_stage, bench_graph_stage, bench_traverse_stage, bench_full_pipeline
}
criterion_main!(benches);
