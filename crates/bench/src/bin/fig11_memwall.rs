//! Fig. 11 — (a) Memory Bottleneck Ratio and (b) Resource Utilization
//! Ratio for k = 16 and k = 32 across the five platforms.

use pim_bench::{print_claims, Claim};
use pim_platforms::assembly_model::{
    AssemblyCostModel, GpuAssemblyModel, PimAssemblyModel, StageBreakdown,
};
use pim_platforms::memwall::{mbr_percent, rur_percent};
use pim_platforms::workload::AssemblyWorkload;

fn main() {
    println!("Fig. 11 — memory bottleneck ratio (MBR) and resource utilization ratio (RUR)\n");
    let mut pa16_mbr = 0.0;
    let mut pa16_rur = 0.0;
    let mut gpu32_mbr = 0.0;
    for &k in &[16usize, 32] {
        let w = AssemblyWorkload::chr14(k);
        println!("k = {k}");
        println!("{:<8} {:>9} {:>9}", "platform", "MBR(%)", "RUR(%)");
        let rows: Vec<StageBreakdown> = vec![
            GpuAssemblyModel::gtx_1080ti().estimate(&w),
            PimAssemblyModel::pim_assembler(2).estimate(&w),
            PimAssemblyModel::ambit(2).estimate(&w),
            PimAssemblyModel::drisa_3t1c(2).estimate(&w),
            PimAssemblyModel::drisa_1t1c(2).estimate(&w),
        ];
        for b in &rows {
            println!("{:<8} {:>9.1} {:>9.1}", b.name, mbr_percent(b), rur_percent(b));
            if k == 16 && b.name == "P-A" {
                pa16_mbr = mbr_percent(b);
                pa16_rur = rur_percent(b);
            }
            if k == 32 && b.name == "GPU" {
                gpu32_mbr = mbr_percent(b);
            }
        }
        println!();
    }
    let claims = vec![
        Claim::new("P-A MBR at k=16 (paper: ~9%, <=16% overall)", 9.0, pa16_mbr, "%"),
        Claim::new("GPU MBR at k=32", 70.0, gpu32_mbr, "%"),
        Claim::new("P-A RUR at k=16 (paper: up to ~65%)", 65.0, pa16_rur, "%"),
    ];
    print_claims("Fig. 11 headline claims", &claims);
}
