//! End-to-end hot-path timing: wall-clock of the full functional pipeline
//! (hashmap → de Bruijn → traverse) on a scaled dataset, serial vs the
//! persistent worker pool, with a byte-identical-stats cross-check.
//!
//! Usage: `hot_path_e2e [--seed N] [--genome-len N] [--k N]`
//!
//! This is the coarse companion to the `hot_path` Criterion micro-benches
//! and to `pim-asm bench --json`, which produces the machine-readable
//! `BENCH_*.json` form of the same measurement.

use std::time::Instant;

use pim_assembler::{PimAssembler, PimAssemblerConfig};
use pim_bench::{scaled_dataset, seed_from_args};

fn arg(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).find(|w| w[0] == name).and_then(|w| w[1].parse().ok()).unwrap_or(default)
}

fn main() {
    let seed = seed_from_args();
    let genome_len = arg("--genome-len", 3000);
    let k = arg("--k", 16);
    let subarrays = (genome_len / 300 + 2).next_power_of_two().max(8);
    let (_, reads) = scaled_dataset(genome_len, 8.0, seed);
    println!(
        "hot-path e2e: genome {genome_len} bp, {} reads, k = {k}, {subarrays} hash sub-arrays\n",
        reads.len()
    );

    let mut results = Vec::new();
    for workers in [1usize, 4] {
        let config =
            PimAssemblerConfig::paper(k).with_hash_subarrays(subarrays).with_workers(workers);
        let mut asm = PimAssembler::new(config);
        let start = Instant::now();
        let run = asm.assemble(&reads).expect("scaled run fits the hash partition");
        let wall = start.elapsed();
        println!(
            "workers = {workers}: {:>8.1} ms wall, {} contigs, {} commands simulated",
            wall.as_secs_f64() * 1e3,
            run.assembly.contigs.len(),
            run.report.commands.total_commands(),
        );
        results.push((workers, run));
    }

    // The pool must not change the simulation: identical command stats
    // regardless of worker count.
    let (_, baseline) = &results[0];
    for (workers, run) in &results[1..] {
        assert_eq!(
            baseline.report.commands, run.report.commands,
            "stats diverged between serial and {workers}-worker pool"
        );
    }
    println!("\nstats identical across worker counts: ok");
}
