//! Fig. 3b — raw throughput of XNOR2 and addition across the seven
//! platforms, for 2²⁷/2²⁸/2²⁹-bit vectors.

use pim_bench::{fmt_throughput, print_claims, Claim};
use pim_platforms::throughput::{ThroughputReport, PAPER_VECTOR_BITS};

fn main() {
    println!("Fig. 3b — throughput of XNOR2 and addition (output bits/s)");
    let report = ThroughputReport::paper_sweep();

    if std::env::args().any(|a| a == "--csv") {
        let path = "fig3b.csv";
        std::fs::write(path, report.to_csv()).expect("write csv");
        println!("wrote {path}");
    }

    for &bits in &PAPER_VECTOR_BITS {
        println!("\nvector length = 2^{} bits", bits.trailing_zeros());
        println!("{:<8} {:>14} {:>14}", "platform", "XNOR2", "addition");
        for p in report.points.iter().filter(|p| p.bits == bits) {
            println!(
                "{:<8} {:>14} {:>14}",
                p.platform,
                fmt_throughput(p.xnor_bits_per_s),
                fmt_throughput(p.add_bits_per_s)
            );
        }
    }

    let claims = vec![
        Claim::new(
            "P-A vs CPU mean speedup (XNOR+add)",
            8.4,
            report.mean_speedup("P-A", "CPU").unwrap(),
            "x",
        ),
        Claim::new("P-A vs Ambit XNOR speedup", 2.3, xnor_ratio(&report, "Ambit"), "x"),
        Claim::new("P-A vs DRISA-1T1C XNOR speedup", 1.9, xnor_ratio(&report, "D1"), "x"),
        Claim::new("P-A vs DRISA-3T1C XNOR speedup", 3.7, xnor_ratio(&report, "D3"), "x"),
    ];
    print_claims("Fig. 3b headline ratios", &claims);
}

fn xnor_ratio(report: &ThroughputReport, other: &str) -> f64 {
    report.mean_xnor("P-A").unwrap() / report.mean_xnor(other).unwrap()
}
