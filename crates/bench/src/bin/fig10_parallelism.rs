//! Fig. 10 — power/delay trade-off vs parallelism degree Pd ∈ {1, 2, 4, 8}
//! for k = 16 and k = 32, and the energy-delay-product optimum — plus the
//! §IV active-sub-array design-space sweep, plus a *real* parallel
//! execution of the pipeline (not the analytic model): the same scaled
//! workload dispatched over worker threads, with totals verified identical
//! to the serial run.

use pim_assembler::config::PimAssemblerConfig;
use pim_assembler::pipeline::PimAssembler;
use pim_bench::fmt_throughput;
use pim_genome::reads::ReadSimulator;
use pim_genome::sequence::DnaSequence;
use pim_platforms::assembly_model::{AssemblyCostModel, PimAssemblyModel};
use pim_platforms::dse;
use pim_platforms::workload::AssemblyWorkload;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    println!("Fig. 10 — power and delay vs parallelism degree (chr14 workload)\n");
    println!(
        "{:<4} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "Pd", "delay@k16(s)", "power@k16(W)", "delay@k32(s)", "power@k32(W)", "EDP@k16(kJ*s)"
    );
    let w16 = AssemblyWorkload::chr14(16);
    let w32 = AssemblyWorkload::chr14(32);
    let mut best = (0usize, f64::INFINITY);
    for pd in [1usize, 2, 4, 8] {
        let m = PimAssemblyModel::pim_assembler(pd);
        let b16 = m.estimate(&w16);
        let b32 = m.estimate(&w32);
        let edp = b16.energy_j() * b16.total_s() / 1000.0;
        println!(
            "{:<4} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>14.1}",
            pd,
            b16.total_s(),
            b16.power_w,
            b32.total_s(),
            b32.power_w,
            edp
        );
        if edp < best.1 {
            best = (pd, edp);
        }
    }
    println!(
        "\nlarger Pd -> smaller delay, higher power (the paper's trade-off); \
energy-delay-product optimum at Pd = {} (paper: Pd ≈ 2)",
        best.0
    );

    println!("\n§IV design-space sweep — active sub-arrays vs raw XNOR throughput:");
    println!("{:<12} {:>14} {:>10} {:>16}", "sub-arrays", "XNOR2", "power(W)", "Gb/s per watt");
    for p in dse::subarray_sweep(8, 512) {
        println!(
            "{:<12} {:>14} {:>10.1} {:>16.2}",
            p.parallel_subarrays,
            fmt_throughput(p.xnor_bits_per_s),
            p.power_w,
            p.bits_per_joule / 1e9
        );
    }

    real_parallel_execution();
}

/// The scaled pipeline *actually executed* through the parallel dispatcher
/// at increasing worker counts. Simulated results (contigs, command
/// totals, schedule-measured sub-array parallelism) are verified identical
/// to the serial run; only host wall-clock changes with workers.
fn real_parallel_execution() {
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("\nReal parallel execution — scaled workload, host cores: {host}");
    println!(
        "{:<8} {:>12} {:>10} {:>14} {:>10}",
        "workers", "host wall(s)", "speedup", "sub-array ∥", "contigs"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let genome = DnaSequence::random(&mut rng, 3000);
    let reads = ReadSimulator::new(80, 18.0).simulate(&genome, &mut rng);
    let mut serial: Option<(f64, pim_assembler::pipeline::PimRun)> = None;
    for workers in [1usize, 2, 4, 8] {
        let cfg = PimAssemblerConfig::small_test(17).with_hash_subarrays(32).with_workers(workers);
        let mut asm = PimAssembler::new(cfg);
        let t0 = std::time::Instant::now();
        let run = asm.assemble(&reads).expect("scaled assembly");
        let wall = t0.elapsed().as_secs_f64();
        let parallelism = run.report.measured_parallelism.unwrap_or(1.0);
        if let Some((serial_wall, reference)) = &serial {
            assert_eq!(
                reference.assembly.contigs, run.assembly.contigs,
                "workers={workers}: contigs diverged from serial"
            );
            assert_eq!(
                reference.report.commands, run.report.commands,
                "workers={workers}: command totals diverged from serial"
            );
            println!(
                "{:<8} {:>12.3} {:>10.2} {:>14.1} {:>10}",
                workers,
                wall,
                serial_wall / wall,
                parallelism,
                run.assembly.contigs.len()
            );
        } else {
            println!(
                "{:<8} {:>12.3} {:>10} {:>14.1} {:>10}",
                workers,
                wall,
                "1.00",
                parallelism,
                run.assembly.contigs.len()
            );
            serial = Some((wall, run));
        }
    }
    println!(
        "all worker counts produced identical contigs and command totals; \
host speedup is bounded by this machine's {host} core(s)"
    );
}
