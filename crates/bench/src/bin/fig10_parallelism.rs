//! Fig. 10 — power/delay trade-off vs parallelism degree Pd ∈ {1, 2, 4, 8}
//! for k = 16 and k = 32, and the energy-delay-product optimum — plus the
//! §IV active-sub-array design-space sweep.

use pim_bench::fmt_throughput;
use pim_platforms::assembly_model::{AssemblyCostModel, PimAssemblyModel};
use pim_platforms::dse;
use pim_platforms::workload::AssemblyWorkload;

fn main() {
    println!("Fig. 10 — power and delay vs parallelism degree (chr14 workload)\n");
    println!("{:<4} {:>12} {:>12} {:>12} {:>12} {:>14}", "Pd", "delay@k16(s)", "power@k16(W)", "delay@k32(s)", "power@k32(W)", "EDP@k16(kJ*s)");
    let w16 = AssemblyWorkload::chr14(16);
    let w32 = AssemblyWorkload::chr14(32);
    let mut best = (0usize, f64::INFINITY);
    for pd in [1usize, 2, 4, 8] {
        let m = PimAssemblyModel::pim_assembler(pd);
        let b16 = m.estimate(&w16);
        let b32 = m.estimate(&w32);
        let edp = b16.energy_j() * b16.total_s() / 1000.0;
        println!(
            "{:<4} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>14.1}",
            pd,
            b16.total_s(),
            b16.power_w,
            b32.total_s(),
            b32.power_w,
            edp
        );
        if edp < best.1 {
            best = (pd, edp);
        }
    }
    println!(
        "\nlarger Pd -> smaller delay, higher power (the paper's trade-off); \
energy-delay-product optimum at Pd = {} (paper: Pd ≈ 2)",
        best.0
    );

    println!("\n§IV design-space sweep — active sub-arrays vs raw XNOR throughput:");
    println!("{:<12} {:>14} {:>10} {:>16}", "sub-arrays", "XNOR2", "power(W)", "Gb/s per watt");
    for p in dse::subarray_sweep(8, 512) {
        println!(
            "{:<12} {:>14} {:>10.1} {:>16.2}",
            p.parallel_subarrays,
            fmt_throughput(p.xnor_bits_per_s),
            p.power_w,
            p.bits_per_joule / 1e9
        );
    }
}
