//! §II-B *Area Overhead* — transistor accounting of the add-on hardware.

use pim_bench::{print_claims, Claim};
use pim_circuits::area::AreaModel;

fn main() {
    let a = AreaModel::paper();
    println!("Area overhead of PIM-Assembler on a commodity DRAM chip\n");
    println!("sub-array: {} rows x {} columns", a.rows, a.cols);
    println!("add-on per SA (per bit-line): {:>6} transistors", a.sa_addon_per_bitline);
    println!("  -> SA add-on total:         {:>6} transistors", a.sa_addon_per_bitline * a.cols);
    println!("modified row decoder (3:8):   {:>6} transistors", a.mrd_addon);
    println!("controller enable drivers:    {:>6} transistors", a.ctrl_addon);
    println!("total add-on:                 {:>6} transistors", a.addon_transistors());
    println!("row-equivalents:              {:>6} rows", a.addon_row_equivalents());
    let claims = vec![
        Claim::new(
            "add-on DRAM-row equivalents per sub-array",
            51.0,
            a.addon_row_equivalents() as f64,
            "",
        ),
        Claim::new("chip-area overhead", 5.0, a.overhead_percent(), "%"),
    ];
    print_claims("area overhead", &claims);
}
