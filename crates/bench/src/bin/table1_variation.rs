//! Table I — Monte-Carlo process-variation study: TRA vs the proposed
//! two-row activation, 10 000 trials per cell.

use pim_bench::seed_from_args;
use pim_circuits::variation::{MonteCarlo, PAPER_TABLE1};

fn main() {
    let seed = seed_from_args();
    println!("Table I — process-variation test error (%), 10000 Monte-Carlo trials, seed {seed}\n");
    let mc = MonteCarlo::new(10_000, seed);
    let table = mc.table1();
    println!(
        "{:<10} {:>10} {:>12} {:>14} {:>16}",
        "variation", "TRA meas", "TRA paper", "2-row meas", "2-row paper"
    );
    for (row, &(pct, paper_tra, paper_two)) in table.rows.iter().zip(PAPER_TABLE1.iter()) {
        assert_eq!(row.variation_pct, pct);
        println!(
            "±{:<9.0} {:>10.2} {:>12.2} {:>14.2} {:>16.2}",
            pct, row.tra_error_pct, paper_tra, row.two_row_error_pct, paper_two
        );
    }
    println!("\nthe two-row activation maintains a Vdd/4 sensing margin vs TRA's Vdd/6,");
    println!("which is why it survives higher variation — the paper's reliability claim");
}
