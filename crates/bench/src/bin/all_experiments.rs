//! Runs every experiment and prints the abstract-claim summary.
//!
//! This is the one-shot regeneration entry point for `EXPERIMENTS.md`.

use pim_bench::{print_claims, scaled_pim_run, seed_from_args, Claim};
use pim_circuits::area::AreaModel;
use pim_circuits::transient::TransientSim;
use pim_circuits::variation::{MonteCarlo, PAPER_TABLE1};
use pim_platforms::assembly_model::{AssemblyCostModel, GpuAssemblyModel, PimAssemblyModel};
use pim_platforms::memwall::{mbr_percent, rur_percent};
use pim_platforms::throughput::ThroughputReport;
use pim_platforms::workload::AssemblyWorkload;

fn main() {
    let seed = seed_from_args();
    println!("PIM-Assembler reproduction — all experiments (seed {seed})");
    println!("================================================================\n");

    // Fig. 3a.
    let sim = TransientSim::nominal_45nm();
    let all_settle = sim.xnor_scenarios().iter().all(|w| w.settled(1e-3));
    let correct = sim.xnor_scenarios().iter().all(|w| {
        let equal = w.label.ends_with("00") || w.label.ends_with("11");
        (w.final_cell_voltage() > 0.9) == equal
    });
    println!("[Fig. 3a] transient XNOR2: all scenarios settle = {all_settle}, cell follows XNOR = {correct}");

    // Fig. 3b.
    let tp = ThroughputReport::paper_sweep();
    println!(
        "[Fig. 3b] P-A XNOR throughput {:.0} Gb/s; speedups: CPU {:.1}x, Ambit {:.2}x, D1 {:.2}x, D3 {:.2}x",
        tp.mean_xnor("P-A").unwrap() / 1e9,
        tp.mean_speedup("P-A", "CPU").unwrap(),
        tp.mean_xnor("P-A").unwrap() / tp.mean_xnor("Ambit").unwrap(),
        tp.mean_xnor("P-A").unwrap() / tp.mean_xnor("D1").unwrap(),
        tp.mean_xnor("P-A").unwrap() / tp.mean_xnor("D3").unwrap(),
    );

    // Table I.
    let mc = MonteCarlo::new(10_000, seed).table1();
    print!("[Table I] (±%, TRA meas/paper, 2-row meas/paper):");
    for (row, &(pct, pt, p2)) in mc.rows.iter().zip(PAPER_TABLE1.iter()) {
        print!(
            " ±{pct:.0}%: {:.2}/{pt:.2}, {:.2}/{p2:.2};",
            row.tra_error_pct, row.two_row_error_pct
        );
    }
    println!();

    // Area.
    let area = AreaModel::paper();
    println!(
        "[Area] {} row-equivalents per sub-array -> {:.2}% chip area (paper ~5%)",
        area.addon_row_equivalents(),
        area.overhead_percent()
    );

    // Fig. 9 / 10 / 11 aggregates.
    let ks = [16usize, 22, 26, 32];
    let mut gpu_t = 0.0;
    let mut pa_t = 0.0;
    let mut gpu_p = 0.0;
    let mut pa_p = 0.0;
    for &k in &ks {
        let w = AssemblyWorkload::chr14(k);
        let g = GpuAssemblyModel::gtx_1080ti().estimate(&w);
        let p = PimAssemblyModel::pim_assembler(2).estimate(&w);
        gpu_t += g.total_s();
        pa_t += p.total_s();
        gpu_p += g.power_w;
        pa_p += p.power_w;
    }
    println!(
        "[Fig. 9] GPU/P-A exec time {:.1}x (paper ~5x); power {:.1}x (paper ~7.5x); P-A avg {:.1} W (paper 38.4 W)",
        gpu_t / pa_t,
        gpu_p / pa_p,
        pa_p / ks.len() as f64
    );

    let w16 = AssemblyWorkload::chr14(16);
    let edp = |pd: usize| {
        let b = PimAssemblyModel::pim_assembler(pd).estimate(&w16);
        b.energy_j() * b.total_s()
    };
    let best_pd = [1usize, 2, 4, 8].into_iter().min_by(|&a, &b| edp(a).total_cmp(&edp(b))).unwrap();
    println!("[Fig. 10] energy-delay optimum at Pd = {best_pd} (paper: Pd ≈ 2)");

    let pa16 = PimAssemblyModel::pim_assembler(2).estimate(&w16);
    let gpu32 = GpuAssemblyModel::gtx_1080ti().estimate(&AssemblyWorkload::chr14(32));
    println!(
        "[Fig. 11] P-A MBR {:.1}% / RUR {:.1}% at k=16 (paper ~9% / ~65%); GPU MBR {:.1}% at k=32 (paper 70%)",
        mbr_percent(&pa16),
        rur_percent(&pa16),
        mbr_percent(&gpu32)
    );

    // Functional cross-check.
    let run = scaled_pim_run(16, 15_000, 12.0, seed);
    println!(
        "\n[functional] scaled pipeline: {} contigs, {} edges, {} AAP2 comparisons executed bit-accurately",
        run.assembly.contigs.len(),
        run.assembly.graph_edges,
        run.report.commands.aap2
    );

    let claims = vec![
        Claim::new("XNOR throughput vs CPU", 8.4, tp.mean_speedup("P-A", "CPU").unwrap(), "x"),
        Claim::new(
            "XNOR throughput vs best PIM (Ambit)",
            2.3,
            tp.mean_xnor("P-A").unwrap() / tp.mean_xnor("Ambit").unwrap(),
            "x",
        ),
        Claim::new("assembly exec time vs GPU", 5.0, gpu_t / pa_t, "x"),
        Claim::new("assembly power vs GPU", 7.5, gpu_p / pa_p, "x"),
        Claim::new("chip area overhead", 5.0, area.overhead_percent(), "%"),
    ];
    print_claims("abstract claims", &claims);
}
