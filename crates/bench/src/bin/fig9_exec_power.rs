//! Fig. 9 — execution-time (a) and power (b) breakdown of the three
//! assembly procedures on GPU, PIM-Assembler, Ambit, DRISA-3T1C, and
//! DRISA-1T1C for k ∈ {16, 22, 26, 32}, at the paper's chr14 scale.
//!
//! The analytic chr14-scale estimates are validated at the end against a
//! *functional* scaled run of the real PIM pipeline (every command executed
//! on the bit-accurate DRAM model) whose measured probe behaviour feeds the
//! extrapolation.

use pim_bench::{print_claims, scaled_pim_run, seed_from_args, Claim};
use pim_platforms::assembly_model::{
    AssemblyCostModel, GpuAssemblyModel, PimAssemblyModel, StageBreakdown,
};
use pim_platforms::workload::AssemblyWorkload;

fn main() {
    let seed = seed_from_args();
    println!("Fig. 9 — execution time and power, chr14 workload (45,711,162 x 101 bp reads)\n");
    let ks = [16usize, 22, 26, 32];
    let mut gpu_total = Vec::new();
    let mut pa_total = Vec::new();
    let mut gpu_power = Vec::new();
    let mut pa_power = Vec::new();
    let mut gpu_hash = Vec::new();
    let mut pa_hash = Vec::new();
    let mut best_pim_power: f64 = f64::INFINITY;

    for &k in &ks {
        let w = AssemblyWorkload::chr14(k);
        println!("k = {k}");
        println!(
            "{:<8} {:>10} {:>10} {:>10} {:>10} {:>9}",
            "platform", "hashmap(s)", "deBruijn(s)", "traverse(s)", "total(s)", "power(W)"
        );
        let rows: Vec<StageBreakdown> = vec![
            GpuAssemblyModel::gtx_1080ti().estimate(&w),
            PimAssemblyModel::pim_assembler(2).estimate(&w),
            PimAssemblyModel::ambit(2).estimate(&w),
            PimAssemblyModel::drisa_3t1c(2).estimate(&w),
            PimAssemblyModel::drisa_1t1c(2).estimate(&w),
        ];
        for b in &rows {
            println!(
                "{:<8} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>9.1}",
                b.name,
                b.hashmap_s,
                b.debruijn_s,
                b.traverse_s,
                b.total_s(),
                b.power_w
            );
        }
        gpu_total.push(rows[0].total_s());
        pa_total.push(rows[1].total_s());
        gpu_power.push(rows[0].power_w);
        pa_power.push(rows[1].power_w);
        gpu_hash.push(rows[0].hashmap_s);
        pa_hash.push(rows[1].hashmap_s);
        for b in &rows[2..] {
            best_pim_power = best_pim_power.min(b.power_w);
        }
        println!();
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let claims = vec![
        Claim::new("GPU/P-A hashmap speedup at k=16", 5.2, gpu_hash[0] / pa_hash[0], "x"),
        Claim::new("GPU/P-A hashmap speedup at k=32", 9.8, gpu_hash[3] / pa_hash[3], "x"),
        Claim::new(
            "GPU/P-A execution-time ratio, mean over k",
            5.0,
            mean(&gpu_total) / mean(&pa_total),
            "x",
        ),
        Claim::new("P-A average power", 38.4, mean(&pa_power), "W"),
        Claim::new("GPU/P-A power ratio", 7.5, mean(&gpu_power) / mean(&pa_power), "x"),
        Claim::new("best-PIM/P-A power ratio", 2.8, best_pim_power / mean(&pa_power), "x"),
    ];
    print_claims("Fig. 9 headline claims", &claims);
    println!(
        "note: the paper's per-k hashmap speedups (5.2x -> 9.8x) and its ~5x mean are not\n\
mutually consistent with hashmap dominating the runtime; we calibrate to the per-k\n\
stage speedups and report the implied mean."
    );

    // Validation: a real functional run at laptop scale, extrapolated.
    println!("\n-- functional validation (scaled dataset, k=16, seed {seed}) --");
    let run = scaled_pim_run(16, 20_000, 15.0, seed);
    println!(
        "scaled run: {} reads, {} k-mers, {} distinct, avg probes {:.2}",
        run.report.workload.reads,
        run.report.workload.total_kmers,
        run.report.workload.distinct_kmers,
        run.report.workload.avg_probes_per_kmer
    );
    println!(
        "measured stage split: hashmap {:.1}% | deBruijn {:.1}% | traverse {:.1}%",
        100.0 * run.report.hashmap.wall_s / run.report.total_wall_s(),
        100.0 * run.report.debruijn.wall_s / run.report.total_wall_s(),
        100.0 * run.report.traverse.wall_s / run.report.total_wall_s()
    );
    let chr14 = run.report.extrapolate_chr14();
    println!(
        "chr14 extrapolation from measured probes: total {:.1} s @ {:.1} W (analytic: {:.1} s)",
        chr14.total_s(),
        chr14.power_w,
        PimAssemblyModel::pim_assembler(2).estimate(&AssemblyWorkload::chr14(16)).total_s()
    );
}
