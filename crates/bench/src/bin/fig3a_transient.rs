//! Fig. 3a — transient simulation of the single-cycle in-memory XNOR2.
//!
//! Prints the bit-line / cell voltage trajectories for all four operand
//! combinations and an ASCII rendering of each trace, mirroring the Spectre
//! waveforms of the paper: the cell recharges to Vdd when `Di = Dj`
//! (XNOR = 1) and discharges to GND when `Di ≠ Dj`.

use pim_circuits::transient::{TransientSim, Waveform};

fn main() {
    println!("Fig. 3a — transient simulation of in-memory XNOR2 (behavioral RC model)");
    let sim = TransientSim::nominal_45nm();
    println!(
        "phases: precharge {:.1} ns | charge share {:.1} ns | sense amplification {:.1} ns\n",
        sim.t_precharge_ns, sim.t_share_ns, sim.t_sense_ns
    );
    for w in sim.xnor_scenarios() {
        print_waveform(&w);
    }
    println!("paper: \"cell's capacitor is charged to Vdd when DiDj=00/11 or discharged to GND when DiDj=10/01\"");
}

fn print_waveform(w: &Waveform) {
    println!(
        "{}:  final BL (XOR2) = {:.3} V, final BL̄ (XNOR2) = {:.3} V, final cell = {:.3} V  {}",
        w.label,
        w.final_bl_voltage(),
        w.final_blbar_voltage(),
        w.final_cell_voltage(),
        if w.final_cell_voltage() > 0.5 {
            "→ cell recharged to Vdd"
        } else {
            "→ cell discharged to GND"
        }
    );
    // ASCII plot of the cell voltage, 64 columns.
    let n = w.time_ns.len();
    let cols = 64;
    let mut line = vec![String::new(); 5];
    for c in 0..cols {
        let v = w.v_cell[c * (n - 1) / (cols - 1)];
        let level = ((v.clamp(0.0, 1.0)) * 4.0).round() as usize;
        for (l, row) in line.iter_mut().enumerate() {
            row.push(if 4 - l == level { '*' } else { ' ' });
        }
    }
    for (i, row) in line.iter().enumerate() {
        println!("  {:>4.1}V |{row}", 1.0 - i as f64 * 0.25);
    }
    println!("        +{}", "-".repeat(cols));
    println!("         0 ns {:>55.1} ns\n", w.time_ns.last().unwrap());
}
