//! Deterministic golden-snapshot emitters for the regression suite.
//!
//! Each function renders one figure/table of the paper's evaluation — or
//! the functional pipeline's `pim-obsv` metrics snapshot — as a flat JSON
//! object with sorted keys and **no timestamps or host-timing values**, so
//! the output is byte-stable for a fixed seed. The workspace test
//! `tests/golden_figures.rs` diffs these against the checked-in artifacts
//! under `tests/golden/`; regenerate them with
//! `GOLDEN_BLESS=1 cargo test --test golden_figures`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use pim_circuits::area::AreaModel;
use pim_circuits::variation::MonteCarlo;
use pim_platforms::assembly_model::{
    AssemblyCostModel, GpuAssemblyModel, PimAssemblyModel, StageBreakdown,
};
use pim_platforms::memwall::{mbr_percent, rur_percent};
use pim_platforms::throughput::ThroughputReport;
use pim_platforms::workload::AssemblyWorkload;

use crate::{observed_mapping_run, observed_pim_run};

/// Schema tag written into every golden artifact (except the pipeline
/// metrics one, which reuses the `pim-obsv` snapshot schema).
pub const GOLDEN_SCHEMA: &str = "pim-golden-v1";

/// Renders sorted `key -> already-formatted value` pairs as a flat JSON
/// object with one pair per line (diff-friendly).
fn render(pairs: &BTreeMap<String, String>) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"{GOLDEN_SCHEMA}\",");
    for (i, (key, value)) in pairs.iter().enumerate() {
        let sep = if i + 1 < pairs.len() { "," } else { "" };
        let _ = writeln!(out, "  \"{key}\": {value}{sep}");
    }
    out.push_str("}\n");
    out
}

/// Shortest round-trip float formatting (`f64` parses back exactly).
fn f(value: f64) -> String {
    format!("{value}")
}

/// Fig. 3b — raw XNOR2/addition throughput of every platform at the
/// paper's three vector lengths. Purely analytic, no randomness.
pub fn throughput_golden() -> String {
    let report = ThroughputReport::paper_sweep();
    let mut pairs = BTreeMap::new();
    for p in &report.points {
        let log2 = p.bits.trailing_zeros();
        pairs.insert(
            format!("throughput.{}.pow{log2}.xnor_bits_per_s", p.platform),
            f(p.xnor_bits_per_s),
        );
        pairs.insert(
            format!("throughput.{}.pow{log2}.add_bits_per_s", p.platform),
            f(p.add_bits_per_s),
        );
    }
    render(&pairs)
}

/// Table I — Monte-Carlo process-variation test error for TRA vs the
/// proposed two-row activation, 10 000 trials per cell at `seed`.
pub fn variation_golden(seed: u64) -> String {
    let table = MonteCarlo::new(10_000, seed).table1();
    let mut pairs = BTreeMap::new();
    for row in &table.rows {
        let pct = row.variation_pct as u64;
        pairs.insert(format!("variation.pm{pct:02}.tra_error_pct"), f(row.tra_error_pct));
        pairs.insert(format!("variation.pm{pct:02}.two_row_error_pct"), f(row.two_row_error_pct));
    }
    render(&pairs)
}

/// §II-B — transistor accounting of the add-on hardware. Pure integers
/// plus the derived overhead percentage.
pub fn area_golden() -> String {
    let a = AreaModel::paper();
    let mut pairs = BTreeMap::new();
    pairs.insert("area.rows".into(), a.rows.to_string());
    pairs.insert("area.cols".into(), a.cols.to_string());
    pairs.insert("area.sa_addon_per_bitline".into(), a.sa_addon_per_bitline.to_string());
    pairs.insert("area.mrd_addon".into(), a.mrd_addon.to_string());
    pairs.insert("area.ctrl_addon".into(), a.ctrl_addon.to_string());
    pairs.insert("area.addon_transistors".into(), a.addon_transistors().to_string());
    pairs.insert("area.addon_row_equivalents".into(), a.addon_row_equivalents().to_string());
    pairs.insert("area.overhead_percent".into(), f(a.overhead_percent()));
    render(&pairs)
}

/// Figs. 9 & 11 — the analytic chr14-scale assembly cost model: per-stage
/// times, power, and the derived MBR/RUR percentages for every platform
/// at k = 16 and k = 32.
pub fn assembly_model_golden() -> String {
    let mut pairs = BTreeMap::new();
    for k in [16usize, 32] {
        let w = AssemblyWorkload::chr14(k);
        let rows: Vec<StageBreakdown> = vec![
            GpuAssemblyModel::gtx_1080ti().estimate(&w),
            PimAssemblyModel::pim_assembler(2).estimate(&w),
            PimAssemblyModel::ambit(2).estimate(&w),
            PimAssemblyModel::drisa_3t1c(2).estimate(&w),
            PimAssemblyModel::drisa_1t1c(2).estimate(&w),
        ];
        for b in &rows {
            let base = format!("model.k{k}.{}", b.name);
            pairs.insert(format!("{base}.hashmap_s"), f(b.hashmap_s));
            pairs.insert(format!("{base}.debruijn_s"), f(b.debruijn_s));
            pairs.insert(format!("{base}.traverse_s"), f(b.traverse_s));
            pairs.insert(format!("{base}.transfer_s"), f(b.transfer_s));
            pairs.insert(format!("{base}.power_w"), f(b.power_w));
            pairs.insert(format!("{base}.mbr_percent"), f(mbr_percent(b)));
            pairs.insert(format!("{base}.rur_percent"), f(rur_percent(b)));
        }
    }
    render(&pairs)
}

/// The functional pipeline's deterministic `pim-obsv` metrics snapshot
/// for the standard scaled dataset at `seed` (k = 15, 2 kb genome, 8×
/// coverage). Host-timing counters are excluded by construction
/// ([`pim_obsv::MetricsSnapshot::deterministic_json`]), so the artifact
/// is identical for serial and worker-pool runs.
pub fn pipeline_metrics_golden(seed: u64) -> String {
    let run = observed_pim_run(15, 2000, 8.0, seed);
    run.report.metrics.expect("observability is enabled").deterministic_json()
}

/// The mapping workload's deterministic `pim-obsv` metrics snapshot at
/// `seed` — the second workload's counter totals (seed probes, match
/// planes, popcount executions, DP wavefronts, and the per-class command
/// counters they drive), pinned the same way as the assembly pipeline's.
/// The run must agree with the software oracle before its counters are
/// worth pinning.
pub fn mapping_metrics_golden(seed: u64) -> String {
    let report = observed_mapping_run(seed);
    assert!(report.agreement, "golden mapping run diverged from the software oracle");
    report.metrics.expect("run_mapping always records metrics").deterministic_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitters_are_deterministic_across_calls() {
        assert_eq!(throughput_golden(), throughput_golden());
        assert_eq!(variation_golden(42), variation_golden(42));
        assert_eq!(area_golden(), area_golden());
        assert_eq!(assembly_model_golden(), assembly_model_golden());
    }

    #[test]
    fn seeds_actually_steer_the_variation_table() {
        assert_ne!(variation_golden(42), variation_golden(43));
    }

    #[test]
    fn artifacts_carry_their_schema_tags() {
        for artifact in [throughput_golden(), area_golden(), assembly_model_golden()] {
            assert!(artifact.contains(GOLDEN_SCHEMA), "{artifact}");
        }
        assert!(pipeline_metrics_golden(42).contains(pim_obsv::SNAPSHOT_SCHEMA));
    }
}
