//! Bounded-ring span recording with Chrome `trace_event` export.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

/// One completed span (a Chrome `"X"` complete event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (e.g. `"stage.hashmap"`, `"dispatch.batch"`).
    pub name: &'static str,
    /// Category tag (`"stage"` or `"dispatch"`).
    pub cat: &'static str,
    /// Track id (0 for the pipeline, worker index + 1 for pool workers).
    pub tid: u64,
    /// Span start, nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// One free integer argument (items processed in the span).
    pub items: u64,
}

struct SpanRing {
    events: VecDeque<SpanEvent>,
    capacity: usize,
    dropped: u64,
}

/// Thread-safe bounded recorder for pipeline/dispatcher spans.
///
/// Timestamps are taken against a per-recorder [`Instant`] epoch so the
/// exported trace starts near zero. When the ring is full the **oldest**
/// events are evicted and counted in [`dropped`](Self::dropped) — the tail
/// of a run is always retained.
#[derive(Debug)]
pub struct SpanRecorder {
    epoch: Instant,
    inner: Mutex<SpanRing>,
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("events", &self.events.len())
            .field("capacity", &self.capacity)
            .field("dropped", &self.dropped)
            .finish()
    }
}

impl SpanRecorder {
    /// A recorder holding at most `capacity` spans (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            inner: Mutex::new(SpanRing {
                events: VecDeque::with_capacity(capacity.clamp(1, 1 << 16)),
                capacity: capacity.max(1),
                dropped: 0,
            }),
        }
    }

    /// Nanoseconds elapsed since the recorder's epoch — use as a span's
    /// start mark, then pass to [`record`](Self::record) at span end.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records a span that began at `start_ns` (from [`now_ns`](Self::now_ns))
    /// and ends now.
    pub fn record(
        &self,
        name: &'static str,
        cat: &'static str,
        tid: u64,
        start_ns: u64,
        items: u64,
    ) {
        let end = self.now_ns();
        let dur_ns = end.saturating_sub(start_ns);
        let mut ring = self.inner.lock().expect("span ring poisoned");
        if ring.events.len() == ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(SpanEvent { name, cat, tid, start_ns, dur_ns, items });
    }

    /// Snapshot of all retained spans, oldest first.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.inner.lock().expect("span ring poisoned").events.iter().copied().collect()
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("span ring poisoned").events.len()
    }

    /// Whether no spans were recorded (or all were evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("span ring poisoned").dropped
    }

    /// Renders the retained spans as Chrome `trace_event` JSON
    /// (`traceEvents` array of `"X"` complete events, timestamps in
    /// microseconds), loadable in `chrome://tracing` or Perfetto.
    pub fn to_chrome_json(&self) -> String {
        let events = self.events();
        let mut out = String::from("{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [\n");
        for (i, e) in events.iter().enumerate() {
            let sep = if i + 1 < events.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"pid\": 1, \
                 \"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {{\"items\": {}}}}}{}",
                e.name,
                e.cat,
                e.tid,
                e.start_ns as f64 / 1000.0,
                e.dur_ns as f64 / 1000.0,
                e.items,
                sep
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_exports_spans() {
        let rec = SpanRecorder::new(8);
        let t0 = rec.now_ns();
        rec.record("stage.hashmap", "stage", 0, t0, 100);
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.dropped(), 0);
        let json = rec.to_chrome_json();
        assert!(json.contains("\"traceEvents\""), "{json}");
        assert!(json.contains("\"stage.hashmap\""), "{json}");
        assert!(json.contains("\"ph\": \"X\""), "{json}");
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let rec = SpanRecorder::new(2);
        for i in 0..5u64 {
            let t0 = rec.now_ns();
            rec.record("dispatch.batch", "dispatch", 0, t0, i);
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 3);
        let items: Vec<u64> = rec.events().iter().map(|e| e.items).collect();
        assert_eq!(items, [3, 4]);
    }
}
