//! Stage budgets: expected-bound watchdogs over snapshot counters.

use crate::snapshot::MetricsSnapshot;

/// One budget inequality: `counter <= Σ factor_i × term_i + slack`.
///
/// Terms reference other snapshot counters, so bounds scale with the
/// workload (e.g. "hashmap AAP2 commands per probe") instead of being
/// absolute numbers. Missing counters evaluate to zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetLine {
    /// Human-readable description surfaced in violation messages.
    pub label: String,
    /// Snapshot key of the counter being bounded.
    pub counter: String,
    /// `(snapshot key, multiplier)` pairs summed into the bound.
    pub terms: Vec<(String, u64)>,
    /// Constant slack added to the bound.
    pub slack: u64,
}

impl BudgetLine {
    /// Builds a line bounding `counter` by the weighted `terms` plus `slack`.
    pub fn new(
        label: impl Into<String>,
        counter: impl Into<String>,
        terms: Vec<(String, u64)>,
        slack: u64,
    ) -> Self {
        Self { label: label.into(), counter: counter.into(), terms, slack }
    }

    /// The bound this line allows given `snapshot`'s counters.
    pub fn bound(&self, snapshot: &MetricsSnapshot) -> u64 {
        let mut bound = self.slack;
        for (key, factor) in &self.terms {
            bound = bound.saturating_add(snapshot.counter(key).saturating_mul(*factor));
        }
        bound
    }

    /// Checks the line, returning a violation message when exceeded.
    pub fn check(&self, snapshot: &MetricsSnapshot) -> Option<String> {
        let actual = snapshot.counter(&self.counter);
        let bound = self.bound(snapshot);
        (actual > bound).then(|| {
            format!(
                "stage budget exceeded [{}]: {} = {} > bound {}",
                self.label, self.counter, actual, bound
            )
        })
    }
}

/// A set of [`BudgetLine`]s checked together against one snapshot.
///
/// Budgets are derived from the compiled AAP templates (command counts per
/// kernel repetition), so a violation means the executed command mix
/// drifted from what the templates say a stage should cost — the kind of
/// silent hot-path regression the `pim-verify` invariant checker exists to
/// catch.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageBudget {
    /// All budget lines, checked independently.
    pub lines: Vec<BudgetLine>,
}

impl StageBudget {
    /// An empty budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a line (builder style).
    pub fn with_line(mut self, line: BudgetLine) -> Self {
        self.lines.push(line);
        self
    }

    /// Checks every line, returning all violation messages.
    pub fn check(&self, snapshot: &MetricsSnapshot) -> Vec<String> {
        self.lines.iter().filter_map(|line| line.check(snapshot)).collect()
    }

    /// Number of lines in the budget.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the budget has no lines.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(pairs: &[(&str, u64)]) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::new();
        for (k, v) in pairs {
            s.add_counter(*k, *v);
        }
        s
    }

    #[test]
    fn within_bound_passes() {
        let budget = StageBudget::new().with_line(BudgetLine::new(
            "aap2 per probe",
            "hashmap.aap2",
            vec![("hashmap.hash_probes".into(), 1)],
            0,
        ));
        let s = snap(&[("hashmap.aap2", 10), ("hashmap.hash_probes", 10)]);
        assert!(budget.check(&s).is_empty());
    }

    #[test]
    fn exceeding_bound_reports_violation() {
        let budget = StageBudget::new().with_line(BudgetLine::new(
            "aap2 per probe",
            "hashmap.aap2",
            vec![("hashmap.hash_probes".into(), 1)],
            2,
        ));
        let s = snap(&[("hashmap.aap2", 13), ("hashmap.hash_probes", 10)]);
        let violations = budget.check(&s);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("13 > bound 12"), "{}", violations[0]);
    }

    #[test]
    fn missing_term_counters_count_as_zero() {
        let line = BudgetLine::new("x", "a.b", vec![("not.there".into(), 100)], 5);
        assert_eq!(line.bound(&MetricsSnapshot::new()), 5);
        assert!(line.check(&snap(&[("a.b", 6)])).is_some());
    }
}
