//! Per-stage × per-sub-array scoped metric accumulation.

use std::collections::BTreeMap;

use crate::counters::CounterSet;

/// Pipeline stage a scope belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Stage {
    /// Host-side setup: read streaming, row images, table layout.
    #[default]
    Setup,
    /// Stage 1 — in-memory hash-table construction.
    Hashmap,
    /// Stage 2 — de Bruijn graph construction.
    Graph,
    /// Stage 3 — Eulerian traversal.
    Traverse,
    /// Stage 4 — scaffolding.
    Scaffold,
    /// Second workload — read mapping (seed filter + DP alignment).
    Mapping,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::Setup,
        Stage::Hashmap,
        Stage::Graph,
        Stage::Traverse,
        Stage::Scaffold,
        Stage::Mapping,
    ];

    /// Stable snapshot key fragment for this stage.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Setup => "setup",
            Stage::Hashmap => "hashmap",
            Stage::Graph => "graph",
            Stage::Traverse => "traverse",
            Stage::Scaffold => "scaffold",
            Stage::Mapping => "mapping",
        }
    }
}

/// Sentinel sub-array index for globally-charged (non-sub-array) traffic.
pub const GLOBAL_SUBARRAY: u32 = u32::MAX;

/// Compact scope key: one pipeline stage × one sub-array (linear index),
/// with [`GLOBAL_SUBARRAY`] marking controller-global traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ScopeId {
    /// Stage this scope accumulates under.
    pub stage: Stage,
    /// Linear sub-array index, or [`GLOBAL_SUBARRAY`].
    pub subarray: u32,
}

impl ScopeId {
    /// Scope for one sub-array within `stage`.
    pub fn subarray(stage: Stage, subarray: u32) -> Self {
        Self { stage, subarray }
    }

    /// Controller-global scope for `stage`.
    pub fn global(stage: Stage) -> Self {
        Self { stage, subarray: GLOBAL_SUBARRAY }
    }

    /// Whether this is a controller-global scope.
    pub fn is_global(&self) -> bool {
        self.subarray == GLOBAL_SUBARRAY
    }
}

/// Sparse scoped accumulator: `ScopeId -> CounterSet`.
///
/// The registry is *not* on the hot path: contexts accumulate into inline
/// [`ContextObsv`](crate::ContextObsv) arrays and the controller folds
/// `since`-deltas in at stage boundaries. Sparseness matters because the
/// paper geometry has 32 768 sub-arrays, of which a run touches a handful.
///
/// `fold` and `merge` are commutative integer adds, so merging N shards in
/// any order equals serial accumulation — the property-test target.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsRegistry {
    scopes: BTreeMap<ScopeId, CounterSet>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates `delta` under `scope`; all-zero deltas are skipped so the
    /// scope map stays sparse.
    pub fn fold(&mut self, scope: ScopeId, delta: &CounterSet) {
        if delta.is_zero() {
            return;
        }
        self.scopes.entry(scope).or_default().merge(delta);
    }

    /// Merges every scope of `other` into `self` (commutative).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (scope, counters) in &other.scopes {
            self.fold(*scope, counters);
        }
    }

    /// Iterates scopes in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&ScopeId, &CounterSet)> {
        self.scopes.iter()
    }

    /// Counters accumulated under `scope`, if any.
    pub fn get(&self, scope: &ScopeId) -> Option<&CounterSet> {
        self.scopes.get(scope)
    }

    /// Sums all scopes of one stage (global + per-sub-array).
    pub fn stage_totals(&self, stage: Stage) -> CounterSet {
        let mut out = CounterSet::new();
        for (scope, counters) in &self.scopes {
            if scope.stage == stage {
                out.merge(counters);
            }
        }
        out
    }

    /// Number of non-empty scopes.
    pub fn len(&self) -> usize {
        self.scopes.len()
    }

    /// Whether no scope has accumulated anything.
    pub fn is_empty(&self) -> bool {
        self.scopes.is_empty()
    }

    /// Drops all accumulated scopes.
    pub fn clear(&mut self) {
        self.scopes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Metric;

    #[test]
    fn fold_skips_zero_deltas_and_accumulates() {
        let mut reg = MetricsRegistry::new();
        reg.fold(ScopeId::global(Stage::Hashmap), &CounterSet::new());
        assert!(reg.is_empty());
        let mut d = CounterSet::new();
        d.add(Metric::Aap2, 4);
        reg.fold(ScopeId::subarray(Stage::Hashmap, 3), &d);
        reg.fold(ScopeId::subarray(Stage::Hashmap, 3), &d);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.stage_totals(Stage::Hashmap).get(Metric::Aap2), 8);
    }

    #[test]
    fn merge_order_is_irrelevant() {
        let mut d1 = CounterSet::new();
        d1.add(Metric::AapCopy, 2);
        let mut d2 = CounterSet::new();
        d2.add(Metric::AapCopy, 5);
        d2.add(Metric::DpuOps, 1);

        let mut a = MetricsRegistry::new();
        a.fold(ScopeId::subarray(Stage::Graph, 0), &d1);
        let mut b = MetricsRegistry::new();
        b.fold(ScopeId::subarray(Stage::Graph, 0), &d2);
        b.fold(ScopeId::global(Stage::Graph), &d1);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.stage_totals(Stage::Graph).get(Metric::AapCopy), 9);
    }
}
