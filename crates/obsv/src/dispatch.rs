//! Lock-free dispatcher telemetry shared between the dispatcher front-end
//! and the worker-pool threads.

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-worker item counts are tracked for at most this many workers;
/// higher worker indices fold into the last slot.
pub const MAX_TRACKED_WORKERS: usize = 16;

/// Dispatcher counters, updated with relaxed atomics (each value is an
/// independent statistic — no cross-counter ordering is needed).
///
/// Counters split into two families:
///
/// * **deterministic** — incremented on the dispatch front-end *before*
///   the serial/pool path split, so they are identical for `--workers 1`
///   and `--workers 8` runs (batches, partitions, max queue depth);
/// * **host** — timing- or scheduling-dependent (pool batches, barrier
///   wait nanoseconds, per-worker item pickup), reported in the snapshot's
///   `host` section and excluded from determinism comparisons.
#[derive(Debug, Default)]
pub struct DispatchMetrics {
    batches: AtomicU64,
    partitions: AtomicU64,
    max_queue_depth: AtomicU64,
    pool_batches: AtomicU64,
    barrier_wait_ns: AtomicU64,
    worker_items: [AtomicU64; MAX_TRACKED_WORKERS],
}

impl DispatchMetrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one `run_partitions` batch of `partitions` sub-array
    /// streams (deterministic: called before the serial/pool split).
    pub fn record_batch(&self, partitions: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.partitions.fetch_add(partitions, Ordering::Relaxed);
        self.max_queue_depth.fetch_max(partitions, Ordering::Relaxed);
    }

    /// Records one batch that went through the worker pool, with the time
    /// the front-end spent blocked on the batch barrier (host).
    pub fn record_pool_batch(&self, barrier_wait_ns: u64) {
        self.pool_batches.fetch_add(1, Ordering::Relaxed);
        self.barrier_wait_ns.fetch_add(barrier_wait_ns, Ordering::Relaxed);
    }

    /// Records one job executed by pool worker `worker` (host).
    pub fn record_worker_item(&self, worker: usize) {
        self.worker_items[worker.min(MAX_TRACKED_WORKERS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.batches.store(0, Ordering::Relaxed);
        self.partitions.store(0, Ordering::Relaxed);
        self.max_queue_depth.store(0, Ordering::Relaxed);
        self.pool_batches.store(0, Ordering::Relaxed);
        self.barrier_wait_ns.store(0, Ordering::Relaxed);
        for w in &self.worker_items {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Deterministic `(key, value)` pairs (identical across worker counts).
    pub fn deterministic_counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("batches", self.batches.load(Ordering::Relaxed)),
            ("partitions", self.partitions.load(Ordering::Relaxed)),
            ("max_queue_depth", self.max_queue_depth.load(Ordering::Relaxed)),
        ]
    }

    /// Host-timing `(key, value)` pairs; zero-valued worker slots are
    /// skipped so serial runs report no phantom workers.
    pub fn host_counters(&self) -> Vec<(String, u64)> {
        let mut out = vec![
            ("pool_batches".to_string(), self.pool_batches.load(Ordering::Relaxed)),
            ("barrier_wait_ns".to_string(), self.barrier_wait_ns.load(Ordering::Relaxed)),
        ];
        for (i, w) in self.worker_items.iter().enumerate() {
            let items = w.load(Ordering::Relaxed);
            if items > 0 {
                out.push((format!("worker{i:02}_items"), items));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_accumulate_and_reset() {
        let m = DispatchMetrics::new();
        m.record_batch(4);
        m.record_batch(9);
        m.record_pool_batch(1_000);
        m.record_worker_item(2);
        m.record_worker_item(2);
        m.record_worker_item(99); // clamps into the last slot
        let det = m.deterministic_counters();
        assert!(det.contains(&("batches", 2)));
        assert!(det.contains(&("partitions", 13)));
        assert!(det.contains(&("max_queue_depth", 9)));
        let host = m.host_counters();
        assert!(host.contains(&("pool_batches".to_string(), 1)));
        assert!(host.contains(&("worker02_items".to_string(), 2)));
        assert!(host.contains(&(format!("worker{:02}_items", MAX_TRACKED_WORKERS - 1), 1)));
        m.reset();
        assert!(m.host_counters().iter().all(|(k, v)| *v == 0 || k.starts_with("worker")));
        assert_eq!(
            m.deterministic_counters(),
            vec![("batches", 0), ("partitions", 0), ("max_queue_depth", 0)]
        );
    }
}
