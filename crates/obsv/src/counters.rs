//! Fixed-array counters and log2 histograms — the zero-allocation record path.

/// One integer metric tracked on the hot path.
///
/// Metrics fall into three families: DRAM command traffic (what the
/// controller/contexts issue), read-path discipline (sensed vs discarded
/// sense-amp read-outs, fault detections), and per-stage algorithmic work
/// (probes, inserts, k-mers, edges, anchors) recorded by the pipeline
/// stages through `AapPort`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Metric {
    /// Host-visible row reads (`RD`, sensed).
    HostReads,
    /// Host-visible row writes (`WR`).
    HostWrites,
    /// Type-1 AAP row copies.
    AapCopy,
    /// Type-2 double-row-activation AAPs.
    Aap2,
    /// Type-3 triple-row-activation carry AAPs.
    Aap3,
    /// Scalar DPU operations.
    DpuOps,
    /// Total DRAM row activations implied by the commands above
    /// (RD/WR: 1, AAP: 2, AAP2: 3, AAP3: 4).
    RowActivations,
    /// Compute results driven through the sense amplifiers back to the host.
    SensedReads,
    /// Compute results discarded at the sense amps (fast path, no read-out).
    DiscardReads,
    /// Bit flips injected by the fault model and observed at a sense.
    FaultFlips,
    /// Hash-table probe comparisons (stage 1).
    HashProbes,
    /// Hash-table insert operations (stage 1).
    HashInserts,
    /// K-mers materialised as graph nodes/edges (stage 2).
    GraphKmers,
    /// Edges consumed by Eulerian traversal (stage 3).
    TraverseEdges,
    /// Read-pair anchors resolved by scaffolding (stage 4).
    ScaffoldAnchors,
    /// Reads streamed through the mapping stage.
    MapReads,
    /// Seed-row comparator probes issued by the mapping stage.
    MapSeedProbes,
    /// XNOR match planes computed during Hamming filtering.
    MapMatchPlanes,
    /// Popcount kernel executions over match-plane groups.
    MapPopcountOps,
    /// DP wavefront steps executed during banded alignment refinement.
    MapDpWavefronts,
}

impl Metric {
    /// Every metric, in canonical (serialisation) order.
    pub const ALL: [Metric; 20] = [
        Metric::HostReads,
        Metric::HostWrites,
        Metric::AapCopy,
        Metric::Aap2,
        Metric::Aap3,
        Metric::DpuOps,
        Metric::RowActivations,
        Metric::SensedReads,
        Metric::DiscardReads,
        Metric::FaultFlips,
        Metric::HashProbes,
        Metric::HashInserts,
        Metric::GraphKmers,
        Metric::TraverseEdges,
        Metric::ScaffoldAnchors,
        Metric::MapReads,
        Metric::MapSeedProbes,
        Metric::MapMatchPlanes,
        Metric::MapPopcountOps,
        Metric::MapDpWavefronts,
    ];

    /// Number of metrics (the fixed counter-array width).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snapshot key fragment for this metric.
    pub fn name(self) -> &'static str {
        match self {
            Metric::HostReads => "host_reads",
            Metric::HostWrites => "host_writes",
            Metric::AapCopy => "aap",
            Metric::Aap2 => "aap2",
            Metric::Aap3 => "aap3",
            Metric::DpuOps => "dpu",
            Metric::RowActivations => "row_activations",
            Metric::SensedReads => "sensed_reads",
            Metric::DiscardReads => "discard_reads",
            Metric::FaultFlips => "fault_flips",
            Metric::HashProbes => "hash_probes",
            Metric::HashInserts => "hash_inserts",
            Metric::GraphKmers => "graph_kmers",
            Metric::TraverseEdges => "traverse_edges",
            Metric::ScaffoldAnchors => "scaffold_anchors",
            Metric::MapReads => "map_reads",
            Metric::MapSeedProbes => "map_seed_probes",
            Metric::MapMatchPlanes => "map_match_planes",
            Metric::MapPopcountOps => "map_popcount_ops",
            Metric::MapDpWavefronts => "map_dp_wavefronts",
        }
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|m| *m == self).expect("metric present in ALL")
    }
}

/// A fixed array of [`Metric::COUNT`] integer counters.
///
/// Adds, merges and `since`-deltas are plain integer arithmetic, so the
/// result of accumulating a set of increments is independent of the order
/// they arrive in — the property the serial-vs-parallel determinism test
/// pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSet {
    values: [u64; Metric::COUNT],
}

impl CounterSet {
    /// An all-zero counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to `metric`.
    #[inline]
    pub fn add(&mut self, metric: Metric, n: u64) {
        self.values[metric.index()] += n;
    }

    /// Current value of `metric`.
    #[inline]
    pub fn get(&self, metric: Metric) -> u64 {
        self.values[metric.index()]
    }

    /// Element-wise accumulation of `other` into `self` (commutative).
    pub fn merge(&mut self, other: &CounterSet) {
        for (dst, src) in self.values.iter_mut().zip(other.values.iter()) {
            *dst += *src;
        }
    }

    /// Element-wise delta `self - base`; panics if any counter regressed.
    pub fn since(&self, base: &CounterSet) -> CounterSet {
        let mut out = CounterSet::default();
        for ((dst, now), then) in out.values.iter_mut().zip(self.values.iter()).zip(&base.values) {
            *dst = now.checked_sub(*then).expect("counters are monotonic");
        }
        out
    }

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.values.iter().all(|v| *v == 0)
    }

    /// Iterates `(metric, value)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Metric, u64)> + '_ {
        Metric::ALL.iter().map(move |m| (*m, self.get(*m)))
    }

    /// Sum of all counters (used by conservation checks).
    pub fn total(&self) -> u64 {
        self.values.iter().sum()
    }
}

/// One distribution tracked as a log2-bucketed histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HistKey {
    /// Probe-chain length per hashmap insert.
    HashProbeLen,
    /// Contig/trail length (edges) per Eulerian walk.
    TraverseTrailLen,
    /// Sub-array partitions per dispatcher batch.
    PartitionItems,
    /// Busy sub-arrays per command-bus issue slot (stream scheduler).
    SchedulerOccupancy,
    /// Candidate positions surviving the seed filter, per mapped read.
    MapCandidates,
}

impl HistKey {
    /// Every histogram key, in canonical order.
    pub const ALL: [HistKey; 5] = [
        HistKey::HashProbeLen,
        HistKey::TraverseTrailLen,
        HistKey::PartitionItems,
        HistKey::SchedulerOccupancy,
        HistKey::MapCandidates,
    ];

    /// Number of histogram keys.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snapshot key fragment for this histogram.
    pub fn name(self) -> &'static str {
        match self {
            HistKey::HashProbeLen => "hash_probe_len",
            HistKey::TraverseTrailLen => "traverse_trail_len",
            HistKey::PartitionItems => "partition_items",
            HistKey::SchedulerOccupancy => "scheduler_occupancy",
            HistKey::MapCandidates => "map_candidates",
        }
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|k| *k == self).expect("key present in ALL")
    }
}

/// Number of buckets per histogram: bucket 0 holds zero, bucket `i >= 1`
/// holds values in `[2^(i-1), 2^i)` — enough for the full `u64` range.
pub const HIST_BUCKETS: usize = 65;

/// A log2-bucketed histogram over `u64` samples, fixed-size, heap-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self { buckets: [0; HIST_BUCKETS] }
    }
}

impl Histogram {
    /// Bucket index for `value` (0 for zero, `ilog2(value) + 1` otherwise).
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            value.ilog2() as usize + 1
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Element-wise accumulation of `other` into `self` (commutative).
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += *src;
        }
    }

    /// Total number of recorded samples across all buckets.
    pub fn total_samples(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|b| *b == 0)
    }

    /// Iterates `(bucket_index, count)` for non-empty buckets.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, c)| **c > 0).map(|(i, c)| (i, *c))
    }
}

/// The fixed set of histograms carried alongside a [`CounterSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistSet {
    hists: [Histogram; HistKey::COUNT],
}

impl HistSet {
    /// Records one sample into the histogram for `key`.
    #[inline]
    pub fn record(&mut self, key: HistKey, value: u64) {
        self.hists[key.index()].record(value);
    }

    /// The histogram for `key`.
    pub fn get(&self, key: HistKey) -> &Histogram {
        &self.hists[key.index()]
    }

    /// Element-wise accumulation of `other` into `self` (commutative).
    pub fn merge(&mut self, other: &HistSet) {
        for (dst, src) in self.hists.iter_mut().zip(other.hists.iter()) {
            dst.merge(src);
        }
    }
}

/// The per-context observability block embedded in every `SubarrayContext`
/// (and once in the controller for globally-charged traffic).
///
/// `record` is an indexed add into inline arrays — no branches on
/// configuration, no heap, nothing shared — so it is safe to leave enabled
/// unconditionally on the AAP hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ContextObsv {
    /// Hot-path counters (cumulative since the last reset).
    pub counters: CounterSet,
    /// Hot-path histograms (cumulative since the last reset).
    pub hists: HistSet,
}

impl ContextObsv {
    /// Adds `n` to `metric`.
    #[inline]
    pub fn record(&mut self, metric: Metric, n: u64) {
        self.counters.add(metric, n);
    }

    /// Records one histogram sample for `key`.
    #[inline]
    pub fn record_value(&mut self, key: HistKey, value: u64) {
        self.hists.record(key, value);
    }

    /// Resets all counters and histograms to zero.
    pub fn reset(&mut self) {
        *self = ContextObsv::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip_and_since() {
        let mut a = CounterSet::new();
        a.add(Metric::Aap2, 5);
        a.add(Metric::HostReads, 2);
        let snap = a;
        a.add(Metric::Aap2, 3);
        let delta = a.since(&snap);
        assert_eq!(delta.get(Metric::Aap2), 3);
        assert_eq!(delta.get(Metric::HostReads), 0);
        assert_eq!(a.get(Metric::Aap2), 8);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = CounterSet::new();
        a.add(Metric::AapCopy, 7);
        let mut b = CounterSet::new();
        b.add(Metric::Aap3, 11);
        b.add(Metric::AapCopy, 1);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.get(Metric::AapCopy), 8);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1023, 1024] {
            h.record(v);
        }
        assert_eq!(h.total_samples(), 7);
        assert_eq!(h.bucket(10), 1); // 1023 in [512, 1024)
        assert_eq!(h.bucket(11), 1); // 1024 in [1024, 2048)
    }

    #[test]
    fn metric_names_are_unique() {
        for (i, a) in Metric::ALL.iter().enumerate() {
            for b in Metric::ALL.iter().skip(i + 1) {
                assert_ne!(a.name(), b.name());
            }
        }
    }
}
