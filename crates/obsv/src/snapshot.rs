//! Flat, serde-free metrics snapshot (the `--metrics-out` artifact).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema tag written into every snapshot artifact.
pub const SNAPSHOT_SCHEMA: &str = "pim-obsv-metrics-v1";

/// A flattened view of one run's metrics: scoped integer counters,
/// derived floats, and host-side (timing-dependent) integers.
///
/// Keys follow a dotted taxonomy:
/// `"{stage}.{metric}"` for stage aggregates,
/// `"{stage}.subNNNNN.{metric}"` for per-sub-array detail,
/// `"hist.{key}.bNN"` / `"hist.{key}.total"` for histogram buckets,
/// `"total.*"` for ledger-derived run totals, and
/// `"dispatch.*"` for dispatcher telemetry.
///
/// The `counters` and `floats` sections are execution-order deterministic
/// (identical for serial and worker-pool runs); `host` holds wall-clock
/// dependent values and is excluded from
/// [`deterministic_json`](MetricsSnapshot::deterministic_json).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Deterministic integer counters, keyed by dotted scope names.
    pub counters: BTreeMap<String, u64>,
    /// Deterministic derived floats (e.g. `measured_parallelism`).
    pub floats: BTreeMap<String, f64>,
    /// Host-timing integers (barrier waits, per-worker items, span drops).
    pub host: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to counter `key` (creating it at zero).
    pub fn add_counter(&mut self, key: impl Into<String>, n: u64) {
        *self.counters.entry(key.into()).or_insert(0) += n;
    }

    /// Value of counter `key`, or 0 when absent.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Full JSON artifact including the host section.
    pub fn to_json(&self) -> String {
        self.render(true)
    }

    /// JSON restricted to the execution-order deterministic sections
    /// (`counters` + `floats`) — byte-identical across worker counts.
    pub fn deterministic_json(&self) -> String {
        self.render(false)
    }

    fn render(&self, with_host: bool) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{SNAPSHOT_SCHEMA}\",");
        render_u64_section(&mut out, "counters", &self.counters, true);
        render_f64_section(&mut out, "floats", &self.floats, with_host);
        if with_host {
            render_u64_section(&mut out, "host", &self.host, false);
        }
        out.push_str("}\n");
        out
    }

    /// Parses an artifact produced by [`to_json`](Self::to_json) or
    /// [`deterministic_json`](Self::deterministic_json). Returns `None`
    /// when the schema tag is missing or a value fails to parse.
    pub fn parse(json: &str) -> Option<MetricsSnapshot> {
        if !json.contains(SNAPSHOT_SCHEMA) {
            return None;
        }
        let mut snap = MetricsSnapshot::new();
        for (key, value) in section_pairs(json, "counters")? {
            snap.counters.insert(key, value.parse::<u64>().ok()?);
        }
        if let Some(pairs) = section_pairs(json, "floats") {
            for (key, value) in pairs {
                snap.floats.insert(key, value.parse::<f64>().ok()?);
            }
        }
        if let Some(pairs) = section_pairs(json, "host") {
            for (key, value) in pairs {
                snap.host.insert(key, value.parse::<u64>().ok()?);
            }
        }
        Some(snap)
    }
}

fn render_u64_section(out: &mut String, name: &str, map: &BTreeMap<String, u64>, comma: bool) {
    let _ = writeln!(out, "  \"{name}\": {{");
    for (i, (key, value)) in map.iter().enumerate() {
        let sep = if i + 1 < map.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{key}\": {value}{sep}");
    }
    let _ = writeln!(out, "  }}{}", if comma { "," } else { "" });
}

fn render_f64_section(out: &mut String, name: &str, map: &BTreeMap<String, f64>, comma: bool) {
    let _ = writeln!(out, "  \"{name}\": {{");
    for (i, (key, value)) in map.iter().enumerate() {
        let sep = if i + 1 < map.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{key}\": {value:.9}{sep}");
    }
    let _ = writeln!(out, "  }}{}", if comma { "," } else { "" });
}

/// Extracts `"key": value` pairs from the one-pair-per-line body of a
/// named section. Lenient by design — only consumed by our own emitters.
fn section_pairs(json: &str, name: &str) -> Option<Vec<(String, String)>> {
    let tag = format!("\"{name}\": {{");
    let start = json.find(&tag)? + tag.len();
    let end = json[start..].find('}')? + start;
    let mut pairs = Vec::new();
    for line in json[start..end].lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else { continue };
        let Some((key, value)) = rest.split_once("\": ") else { continue };
        pairs.push((key.to_string(), value.trim().to_string()));
    }
    Some(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips() {
        let mut snap = MetricsSnapshot::new();
        snap.add_counter("hashmap.aap2", 42);
        snap.add_counter("graph.host_writes", 7);
        snap.floats.insert("measured_parallelism".into(), 3.5);
        snap.host.insert("dispatch.barrier_wait_ns".into(), 123_456);
        let parsed = MetricsSnapshot::parse(&snap.to_json()).expect("parses");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn deterministic_json_excludes_host() {
        let mut snap = MetricsSnapshot::new();
        snap.add_counter("total.commands", 9);
        snap.host.insert("dispatch.pool_batches".into(), 3);
        let det = snap.deterministic_json();
        assert!(!det.contains("pool_batches"), "{det}");
        let parsed = MetricsSnapshot::parse(&det).expect("parses");
        assert_eq!(parsed.counter("total.commands"), 9);
        assert!(parsed.host.is_empty());
    }

    #[test]
    fn missing_schema_is_rejected() {
        assert!(MetricsSnapshot::parse("{\"counters\": {}}").is_none());
    }
}
