//! `pim-obsv` — observability layer for the PIM-Assembler platform.
//!
//! This crate provides the measurement surface the rest of the stack feeds:
//!
//! * [`Metric`] / [`CounterSet`] / [`Histogram`] — fixed-array integer
//!   counters and log2-bucketed histograms with **no heap allocation on the
//!   record path**. Every hot-path increment is an indexed add into an
//!   inline array ([`ContextObsv`]), mirroring the integer-exact
//!   `EnergyLedger` discipline: commutative `merge`/`since` deltas make the
//!   final numbers independent of execution interleaving.
//! * [`MetricsRegistry`] — per-stage × per-sub-array scoped accumulation
//!   keyed by a small [`ScopeId`]. Hot paths never touch the registry;
//!   deltas are folded in at stage boundaries.
//! * [`MetricsSnapshot`] — a flat, serde-free JSON snapshot
//!   (`--metrics-out metrics.json`) merged into `PerfReport`.
//! * [`SpanRecorder`] — begin/end spans for pipeline stages and dispatcher
//!   batches in a bounded ring buffer, exportable as Chrome `trace_event`
//!   JSON (`--trace-out trace.json`, readable in `chrome://tracing` or
//!   Perfetto).
//! * [`StageBudget`] — a watchdog comparing live counters against expected
//!   bounds derived from the compiled AAP templates, surfaced through the
//!   `pim-verify` invariant checker.
//! * [`DispatchMetrics`] — lock-free dispatcher telemetry (batches, queue
//!   depth, barrier wait, per-worker items), split into execution-order
//!   *deterministic* counters and host-timing counters.
//!
//! The crate is dependency-free (std only) so it can sit underneath
//! `pim-dram` without widening the build graph.

#![warn(missing_docs)]

mod budget;
mod counters;
mod dispatch;
mod registry;
mod snapshot;
mod span;

pub use budget::{BudgetLine, StageBudget};
pub use counters::{ContextObsv, CounterSet, HistKey, HistSet, Histogram, Metric};
pub use dispatch::{DispatchMetrics, MAX_TRACKED_WORKERS};
pub use registry::{MetricsRegistry, ScopeId, Stage, GLOBAL_SUBARRAY};
pub use snapshot::{MetricsSnapshot, SNAPSHOT_SCHEMA};
pub use span::{SpanEvent, SpanRecorder};
