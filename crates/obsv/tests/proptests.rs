//! Property tests for metrics aggregation: shard merging is
//! order-independent and equals serial accumulation; histograms conserve
//! sample counts.
//!
//! Events are decoded from plain `u64` words (the vendored proptest
//! subset has no tuple strategies): low bits pick the stage / sub-array /
//! metric, high bits the increment amount.

use proptest::prelude::*;

use pim_obsv::{CounterSet, Histogram, Metric, MetricsRegistry, ScopeId, Stage};

/// Decodes one event word into (scope, metric, amount).
fn decode_event(word: u64) -> (ScopeId, Metric, u64) {
    let stage = Stage::ALL[(word % Stage::ALL.len() as u64) as usize];
    let sub = ((word >> 8) % 8) as u32;
    let metric = Metric::ALL[((word >> 16) % Metric::COUNT as u64) as usize];
    let amount = (word >> 24) % 1_000;
    (ScopeId::subarray(stage, sub), metric, amount)
}

fn fold_event(registry: &mut MetricsRegistry, word: u64) {
    let (scope, metric, amount) = decode_event(word);
    let mut delta = CounterSet::new();
    delta.add(metric, amount);
    registry.fold(scope, &delta);
}

proptest! {
    // Splitting an event stream into N shards, accumulating each shard
    // into its own registry, and merging the shards in a shuffled order
    // yields exactly the registry built by serial accumulation.
    #[test]
    fn shard_merge_is_order_independent_and_equals_serial(
        events in proptest::collection::vec(any::<u64>(), 0..200),
        shards in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut serial = MetricsRegistry::new();
        for word in &events {
            fold_event(&mut serial, *word);
        }

        // Sharded: round-robin events across shards.
        let mut parts: Vec<MetricsRegistry> =
            (0..shards).map(|_| MetricsRegistry::new()).collect();
        for (i, word) in events.iter().enumerate() {
            fold_event(&mut parts[i % shards], *word);
        }

        // Merge shards in a seed-shuffled order (xorshift* — deterministic
        // shuffle without a rand dependency).
        let mut order: Vec<usize> = (0..shards).collect();
        let mut state = seed | 1;
        for i in (1..order.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            order.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let mut merged = MetricsRegistry::new();
        for idx in order {
            merged.merge(&parts[idx]);
        }
        prop_assert_eq!(&merged, &serial);

        // Merging in reverse order changes nothing either.
        let mut reversed = MetricsRegistry::new();
        for part in parts.iter().rev() {
            reversed.merge(part);
        }
        prop_assert_eq!(&reversed, &serial);
    }

    // Histogram bucket counts always conserve the number of recorded
    // samples, including across merges, and every sample lands in the
    // bucket covering its value.
    #[test]
    fn histogram_conserves_samples(
        a in proptest::collection::vec(any::<u64>(), 0..300),
        b in proptest::collection::vec(any::<u64>(), 0..300),
    ) {
        let mut ha = Histogram::default();
        for v in &a {
            ha.record(*v);
        }
        let mut hb = Histogram::default();
        for v in &b {
            hb.record(*v);
        }
        prop_assert_eq!(ha.total_samples(), a.len() as u64);
        prop_assert_eq!(hb.total_samples(), b.len() as u64);

        let mut merged = ha;
        merged.merge(&hb);
        prop_assert_eq!(merged.total_samples(), (a.len() + b.len()) as u64);

        for v in a.iter().chain(&b) {
            let idx = Histogram::bucket_of(*v);
            prop_assert!(merged.bucket(idx) > 0);
            if *v > 0 {
                let lo = 1u64 << (idx - 1);
                prop_assert!(*v >= lo);
                if idx < 64 {
                    prop_assert!(*v < lo << 1);
                }
            }
        }
    }

    // CounterSet `since` deltas recompose: base + (now - base) == now.
    #[test]
    fn counter_since_recomposes(
        base_events in proptest::collection::vec(any::<u64>(), 0..50),
        extra_events in proptest::collection::vec(any::<u64>(), 0..50),
    ) {
        let mut now = CounterSet::new();
        for word in &base_events {
            let (_, metric, amount) = decode_event(*word);
            now.add(metric, amount);
        }
        let base = now;
        for word in &extra_events {
            let (_, metric, amount) = decode_event(*word);
            now.add(metric, amount);
        }
        let mut recomposed = base;
        recomposed.merge(&now.since(&base));
        prop_assert_eq!(recomposed, now);
    }
}
