#![warn(missing_docs)]
//! # pim-dram
//!
//! A functional, timing-, and energy-annotated model of a processing-in-DRAM
//! memory hierarchy, the substrate of the PIM-Assembler platform
//! (Angizi et al., *PIM-Assembler: A Processing-in-Memory Platform for Genome
//! Assembly*, DAC 2020).
//!
//! The crate models the full DRAM organization from Fig. 1 of the paper:
//! chips contain banks, banks contain MATs, MATs contain computational
//! sub-arrays of 1024 rows × 256 columns. Each sub-array's row space is split
//! into 1016 *data rows* driven by a regular row decoder and 8 *compute rows*
//! (`x1..x8`) driven by a [`decoder::ModifiedRowDecoder`] that supports
//! multi-row activation. The reconfigurable sense amplifier of Fig. 2 is
//! modeled digitally by its truth table in [`sense_amp`], giving:
//!
//! * single-cycle **XNOR2** via two-row activation and the shifted-VTC
//!   NOR/NAND threshold detectors,
//! * single-cycle **carry** (3-input majority) via Ambit-style triple-row
//!   activation (TRA),
//! * single-cycle **sum** via the SA latch and the add-on XOR gate.
//!
//! Every operation is issued as an `ACTIVATE-ACTIVATE-PRECHARGE` (*AAP*)
//! command through the [`controller::Controller`], which executes it
//! bit-accurately against the stored array content and charges latency from
//! [`timing::TimingParams`] and energy from [`energy::EnergyParams`].
//!
//! ## Example
//!
//! ```
//! use pim_dram::{controller::Controller, geometry::DramGeometry, Result};
//!
//! # fn main() -> Result<()> {
//! let mut ctrl = Controller::new(DramGeometry::paper_assembly());
//! let sub = ctrl.subarray_handle(0, 0, 0, 0)?;
//!
//! // Write two operand rows, copy them into compute rows x1/x2, XNOR them.
//! let a = pim_dram::bitrow::BitRow::from_fn(256, |i| i % 3 == 0);
//! let b = pim_dram::bitrow::BitRow::from_fn(256, |i| i % 5 == 0);
//! ctrl.write_row(sub, 10, &a)?;
//! ctrl.write_row(sub, 11, &b)?;
//! ctrl.aap_copy(sub, 10, ctrl.compute_row(0))?;
//! ctrl.aap_copy(sub, 11, ctrl.compute_row(1))?;
//! ctrl.aap2_xnor(sub, [ctrl.compute_row(0), ctrl.compute_row(1)], 20)?;
//!
//! let got = ctrl.read_row(sub, 20)?;
//! assert_eq!(got, a.xnor(&b));
//! # Ok(())
//! # }
//! ```

pub mod address;
pub mod address_map;
pub mod bitrow;
pub mod command;
pub mod context;
pub mod controller;
pub mod decoder;
pub mod energy;
pub mod error;
pub mod fault;
pub mod geometry;
pub mod hierarchy;
pub mod ledger;
pub mod port;
pub mod profile;
pub mod refresh;
pub mod schedule;
pub mod sense_amp;
pub mod stats;
pub mod subarray;
pub mod timing;
pub mod trace;

pub use address::{RowAddr, SubarrayId};
pub use bitrow::BitRow;
pub use command::DramCommand;
pub use context::SubarrayContext;
pub use controller::Controller;
pub use error::{DramError, Result};
pub use fault::{FaultConfig, FaultInjector};
pub use geometry::DramGeometry;
pub use ledger::{CommandClass, CommandCosts, EnergyLedger};
pub use port::AapPort;
pub use profile::{ActivationModel, BackendProfile};
pub use stats::{CommandStats, EnergyStats};

/// Re-export of the observability layer the command surface feeds
/// ([`context::SubarrayContext`] / [`controller::Controller`] counters,
/// [`controller::Controller::metrics_snapshot`] scoping types).
pub use pim_obsv as obsv;
