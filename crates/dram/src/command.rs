//! The PIM-DRAM command set.
//!
//! PIM-Assembler exposes three `AAP` instruction shapes (§II-B *Software
//! Support*), differing only in the number of activated source rows:
//!
//! 1. `AAP(src, des, size)` — copy (RowClone-FPM),
//! 2. `AAP(src1, src2, des, size)` — two-row activation (XNOR/NOR/NAND),
//! 3. `AAP(src1, src2, src3, des, size)` — Ambit TRA (majority / carry).
//!
//! Plain `Read`/`Write` transfer a row between the array and the host
//! through the global row buffer; `DpuOp` accounts a MAT-level digital
//! processing-unit operation (e.g. the AND reduction of PIM_XNOR results).

use std::fmt;

use crate::address::RowAddr;
use crate::energy::EnergyParams;
use crate::sense_amp::SaMode;
use crate::timing::TimingParams;

/// One command as issued by the controller to a sub-array.
///
/// # Examples
///
/// ```
/// use pim_dram::{command::DramCommand, address::RowAddr, sense_amp::SaMode};
///
/// let c = DramCommand::Aap2 {
///     srcs: [RowAddr(1016), RowAddr(1017)],
///     dst: RowAddr(20),
///     mode: SaMode::Xnor,
/// };
/// assert_eq!(c.mnemonic(), "AAP2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramCommand {
    /// Read one row to the host through the global row buffer.
    Read {
        /// Source row.
        src: RowAddr,
    },
    /// Write one row from the host through the global row buffer.
    Write {
        /// Destination row.
        dst: RowAddr,
    },
    /// Type-1 AAP: in-array row copy (RowClone-FPM).
    Aap {
        /// Source row.
        src: RowAddr,
        /// Destination row.
        dst: RowAddr,
    },
    /// Type-2 AAP: simultaneous two-row activation, SA evaluates `mode`,
    /// result written back to `dst`.
    Aap2 {
        /// The two simultaneously activated compute rows.
        srcs: [RowAddr; 2],
        /// Destination row.
        dst: RowAddr,
        /// SA mode in effect.
        mode: SaMode,
    },
    /// Type-3 AAP: Ambit-style triple-row activation (majority), result
    /// written back to `dst`. With [`SaMode::CarrySum`] the SA additionally
    /// produces the Sum bit from the latched previous carry.
    Aap3 {
        /// The three simultaneously activated compute rows.
        srcs: [RowAddr; 3],
        /// Destination row.
        dst: RowAddr,
        /// SA mode in effect.
        mode: SaMode,
    },
    /// One DPU scalar operation in the MAT-level digital processing unit.
    DpuOp,
}

impl DramCommand {
    /// Short mnemonic for traces and statistics keys.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            DramCommand::Read { .. } => "RD",
            DramCommand::Write { .. } => "WR",
            DramCommand::Aap { .. } => "AAP",
            DramCommand::Aap2 { .. } => "AAP2",
            DramCommand::Aap3 { .. } => "AAP3",
            DramCommand::DpuOp => "DPU",
        }
    }

    /// Latency of the command in nanoseconds for a row of `cols` bits.
    pub fn latency_ns(&self, timing: &TimingParams, cols: usize) -> f64 {
        match self {
            DramCommand::Read { .. } => timing.row_read_ns(cols),
            DramCommand::Write { .. } => timing.row_write_ns(cols),
            // All AAP shapes take the same tRAS + tRP window: the extra
            // source rows are raised in the same activation (that is the
            // point of the modified row decoder).
            DramCommand::Aap { .. } | DramCommand::Aap2 { .. } | DramCommand::Aap3 { .. } => {
                timing.aap_ns()
            }
            // DPU scalar ops run at the array command clock.
            DramCommand::DpuOp => timing.t_ck_ns,
        }
    }

    /// Energy of the command in nanojoules for a row of `cols` bits.
    pub fn energy_nj(&self, energy: &EnergyParams, cols: usize) -> f64 {
        match self {
            DramCommand::Read { .. } => energy.row_read_nj(cols),
            DramCommand::Write { .. } => energy.row_write_nj(cols),
            DramCommand::Aap { .. } => energy.aap_nj(),
            DramCommand::Aap2 { .. } => energy.aap2_nj(),
            DramCommand::Aap3 { .. } => energy.aap3_nj(),
            DramCommand::DpuOp => energy.dpu_op_nj,
        }
    }
}

impl fmt::Display for DramCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramCommand::Read { src } => write!(f, "RD {src}"),
            DramCommand::Write { dst } => write!(f, "WR {dst}"),
            DramCommand::Aap { src, dst } => write!(f, "AAP {src} -> {dst}"),
            DramCommand::Aap2 { srcs, dst, mode } => {
                write!(f, "AAP2[{mode:?}] {},{} -> {dst}", srcs[0], srcs[1])
            }
            DramCommand::Aap3 { srcs, dst, mode } => {
                write!(f, "AAP3[{mode:?}] {},{},{} -> {dst}", srcs[0], srcs[1], srcs[2])
            }
            DramCommand::DpuOp => write!(f, "DPU"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aap_shapes_share_latency() {
        let t = TimingParams::ddr4_2133();
        let a = DramCommand::Aap { src: RowAddr(0), dst: RowAddr(1) };
        let a2 = DramCommand::Aap2 {
            srcs: [RowAddr(1016), RowAddr(1017)],
            dst: RowAddr(1),
            mode: SaMode::Xnor,
        };
        let a3 = DramCommand::Aap3 {
            srcs: [RowAddr(1016), RowAddr(1017), RowAddr(1018)],
            dst: RowAddr(1),
            mode: SaMode::Carry,
        };
        assert_eq!(a.latency_ns(&t, 256), a2.latency_ns(&t, 256));
        assert_eq!(a2.latency_ns(&t, 256), a3.latency_ns(&t, 256));
    }

    #[test]
    fn energies_order_by_activated_rows() {
        let e = EnergyParams::ddr4_45nm();
        let a = DramCommand::Aap { src: RowAddr(0), dst: RowAddr(1) }.energy_nj(&e, 256);
        let a2 = DramCommand::Aap2 {
            srcs: [RowAddr(0), RowAddr(1)],
            dst: RowAddr(2),
            mode: SaMode::Xnor,
        }
        .energy_nj(&e, 256);
        let a3 = DramCommand::Aap3 {
            srcs: [RowAddr(0), RowAddr(1), RowAddr(2)],
            dst: RowAddr(3),
            mode: SaMode::Carry,
        }
        .energy_nj(&e, 256);
        assert!(a < a2 && a2 < a3);
    }

    #[test]
    fn display_shows_routing() {
        let c = DramCommand::Aap { src: RowAddr(5), dst: RowAddr(9) };
        assert_eq!(c.to_string(), "AAP r5 -> r9");
    }

    #[test]
    fn dpu_is_fast_and_cheap() {
        let t = TimingParams::ddr4_2133();
        let e = EnergyParams::ddr4_45nm();
        let d = DramCommand::DpuOp;
        assert!(d.latency_ns(&t, 256) < 2.0);
        assert!(d.energy_nj(&e, 256) < 0.1);
    }
}
