//! Command tracing.
//!
//! A bounded ring of recently issued commands with their target sub-array
//! and timestamp, for debugging mapped kernels and for writing
//! waveform-style logs from tests. Tracing is off by default (zero cost)
//! and enabled per controller. Timestamps are integer picoseconds taken
//! straight from the controller's [`crate::ledger::EnergyLedger`], so two
//! runs issuing the same command multiset produce bit-identical traces.

use std::collections::VecDeque;
use std::fmt;

use crate::address::SubarrayId;
use crate::command::DramCommand;

/// One traced command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Issue timestamp: cumulative serial picoseconds at issue.
    pub at_ps: u64,
    /// Target sub-array (None for DPU/global commands).
    pub subarray: Option<SubarrayId>,
    /// The command.
    pub command: DramCommand,
}

impl TraceEntry {
    /// Issue timestamp in nanoseconds (display convenience; the stored
    /// integer picoseconds are the source of truth).
    pub fn at_ns(&self) -> f64 {
        self.at_ps as f64 / 1e3
    }
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.subarray {
            Some(s) => write!(f, "[{:>12.1} ns] {s} {}", self.at_ns(), self.command),
            None => write!(f, "[{:>12.1} ns] -- {}", self.at_ns(), self.command),
        }
    }
}

/// Bounded command trace.
///
/// # Examples
///
/// ```
/// use pim_dram::trace::CommandTrace;
///
/// let mut t = CommandTrace::new(4);
/// assert!(t.is_empty());
/// assert_eq!(t.capacity(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CommandTrace {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    dropped: u64,
}

impl CommandTrace {
    /// Creates a trace keeping the most recent `capacity` commands.
    pub fn new(capacity: usize) -> Self {
        CommandTrace { entries: VecDeque::with_capacity(capacity.min(4096)), capacity, dropped: 0 }
    }

    /// Records a command.
    pub fn record(&mut self, at_ps: u64, subarray: Option<SubarrayId>, command: DramCommand) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry { at_ps, subarray, command });
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Commands evicted (or rejected by a zero-capacity trace).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears the retained entries (the drop counter persists).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl fmt::Display for CommandTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(f, "{e}")?;
        }
        if self.dropped > 0 {
            writeln!(f, "… {} earlier command(s) dropped", self.dropped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::RowAddr;

    fn cmd(n: usize) -> DramCommand {
        DramCommand::Aap { src: RowAddr(n), dst: RowAddr(n + 1) }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = CommandTrace::new(3);
        for i in 0..5 {
            t.record(i as u64, None, cmd(i));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let first = t.entries().next().unwrap();
        assert_eq!(first.command, cmd(2));
    }

    #[test]
    fn zero_capacity_counts_only() {
        let mut t = CommandTrace::new(0);
        t.record(1, None, cmd(0));
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn display_includes_timestamps() {
        let mut t = CommandTrace::new(2);
        t.record(47_100, None, cmd(0));
        let s = t.to_string();
        assert!(s.contains("47.1 ns"));
        assert!(s.contains("AAP"));
    }

    #[test]
    fn at_ns_converts_from_picoseconds() {
        let mut t = CommandTrace::new(1);
        t.record(2_500, None, cmd(0));
        let e = *t.entries().next().unwrap();
        assert_eq!(e.at_ps, 2_500);
        assert!((e.at_ns() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn clear_keeps_drop_counter() {
        let mut t = CommandTrace::new(1);
        t.record(0, None, cmd(0));
        t.record(1, None, cmd(1));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }
}
