//! DRAM energy parameters.
//!
//! Per-command energies are expressed in nanojoules per *sub-array* event.
//! Constants are derived from the Rambus DRAM power model scaled to one
//! 256-column sub-array segment at 45 nm, the same sources the paper feeds
//! into its Cacti-based architectural simulator (§II-B). Absolute joules are
//! less important than their ratios: every platform model in `pim-platforms`
//! is built from these same constants, so cross-platform comparisons (Fig. 9b,
//! Fig. 10) depend only on command counts × these shared costs.

/// Per-command energy and static-power parameters.
///
/// # Examples
///
/// ```
/// use pim_dram::energy::EnergyParams;
///
/// let e = EnergyParams::ddr4_45nm();
/// assert!(e.aap_nj() > e.act_nj);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Energy of one ACTIVATE of one sub-array row (nJ).
    pub act_nj: f64,
    /// Energy of one PRECHARGE of one sub-array (nJ).
    pub pre_nj: f64,
    /// Energy per bit moved through the global row buffer and I/O (pJ/bit).
    pub io_pj_per_bit: f64,
    /// Extra energy of a multi-row (2- or 3-row) activation relative to a
    /// single ACTIVATE, per additional row (nJ). Charge-sharing activations
    /// drive more cells per bit-line.
    pub multi_row_extra_nj: f64,
    /// Energy of one sense-amplifier add-on evaluation across the row
    /// (the reconfigurable SA's inverters/XOR/MUX; nJ per 256-bit row).
    pub sa_addon_nj: f64,
    /// Energy of one DPU scalar operation (nJ).
    pub dpu_op_nj: f64,
    /// Background (static + refresh) power per bank (mW).
    pub background_mw_per_bank: f64,
}

impl EnergyParams {
    /// 45 nm DDR4-class constants scaled to one 1024×256 sub-array.
    pub fn ddr4_45nm() -> Self {
        EnergyParams {
            act_nj: 0.909,
            pre_nj: 0.303,
            io_pj_per_bit: 4.0,
            multi_row_extra_nj: 0.18,
            sa_addon_nj: 0.05,
            dpu_op_nj: 0.02,
            background_mw_per_bank: 31.0,
        }
    }

    /// 45 nm SOT-MRAM constants for the PANDA-style backend, scaled to the
    /// same 1024×256 sub-array segment.
    ///
    /// MTJ sensing draws less array energy than DRAM charge sharing
    /// (`act_nj`), but each additional simultaneously-sensed row adds a
    /// proportionally larger reference-current surcharge
    /// (`multi_row_extra_nj`) and the bulk-logic sense amps are heavier
    /// (`sa_addon_nj`). Non-volatility removes refresh, so background
    /// power is a fraction of DRAM's.
    pub fn sot_mram_45nm() -> Self {
        EnergyParams {
            act_nj: 0.35,
            pre_nj: 0.1,
            io_pj_per_bit: 4.0,
            multi_row_extra_nj: 0.25,
            sa_addon_nj: 0.08,
            dpu_op_nj: 0.02,
            background_mw_per_bank: 5.0,
        }
    }

    /// Energy of a single-source AAP (copy): two ACTIVATEs + one PRECHARGE.
    pub fn aap_nj(&self) -> f64 {
        2.0 * self.act_nj + self.pre_nj
    }

    /// Energy of a two-source AAP (two-row activation XNOR): the two source
    /// rows activate simultaneously (one ACT + one extra-row surcharge), the
    /// destination activates, then PRECHARGE; plus one SA add-on evaluation.
    pub fn aap2_nj(&self) -> f64 {
        2.0 * self.act_nj + self.multi_row_extra_nj + self.pre_nj + self.sa_addon_nj
    }

    /// Energy of a three-source AAP (TRA majority/carry).
    pub fn aap3_nj(&self) -> f64 {
        2.0 * self.act_nj + 2.0 * self.multi_row_extra_nj + self.pre_nj + self.sa_addon_nj
    }

    /// Energy of moving `bits` through the global row buffer / chip I/O (nJ).
    pub fn io_nj(&self, bits: usize) -> f64 {
        bits as f64 * self.io_pj_per_bit / 1000.0
    }

    /// Energy of a full row read (ACT + stream + PRE).
    pub fn row_read_nj(&self, bits: usize) -> f64 {
        self.act_nj + self.pre_nj + self.io_nj(bits)
    }

    /// Energy of a full row write.
    pub fn row_write_nj(&self, bits: usize) -> f64 {
        self.act_nj + self.pre_nj + self.io_nj(bits)
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams::ddr4_45nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aap_energy_ordering() {
        let e = EnergyParams::ddr4_45nm();
        // More simultaneously-activated rows cost strictly more energy.
        assert!(e.aap3_nj() > e.aap2_nj());
        assert!(e.aap2_nj() > e.aap_nj());
    }

    #[test]
    fn io_energy_scales_linearly() {
        let e = EnergyParams::ddr4_45nm();
        assert!((e.io_nj(2000) - 2.0 * e.io_nj(1000)).abs() < 1e-12);
    }

    #[test]
    fn row_ops_cost_more_than_act_pre() {
        let e = EnergyParams::ddr4_45nm();
        assert!(e.row_read_nj(256) > e.act_nj + e.pre_nj);
        assert!(e.row_write_nj(256) > e.act_nj + e.pre_nj);
    }
}
