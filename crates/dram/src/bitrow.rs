//! Packed bit vectors representing the content of one DRAM row.
//!
//! A [`BitRow`] is a fixed-width sequence of bits stored in 64-bit words.
//! It supports the bulk bitwise operations the PIM-Assembler sense amplifier
//! realizes in-array (XNOR2, 3-input majority, ...) so that the functional
//! simulator can execute in-memory operations bit-accurately.

use std::fmt;

const WORD_BITS: usize = 64;

/// A fixed-width packed bit vector; the content of one DRAM row.
///
/// # Examples
///
/// ```
/// use pim_dram::bitrow::BitRow;
///
/// let a = BitRow::from_bits([true, false, true, true]);
/// let b = BitRow::from_bits([true, true, false, true]);
/// assert_eq!(a.xnor(&b).to_bit_vec(), vec![true, false, false, true]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitRow {
    len: usize,
    words: Vec<u64>,
}

impl BitRow {
    /// Creates an all-zero row of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitRow { len, words: vec![0; len.div_ceil(WORD_BITS)] }
    }

    /// Creates an all-one row of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut row = BitRow { len, words: vec![u64::MAX; len.div_ceil(WORD_BITS)] };
        row.mask_tail();
        row
    }

    /// Creates a row from an iterator of bits (index 0 first), packing
    /// words directly as the iterator is drained.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let iter = bits.into_iter();
        let (lower, _) = iter.size_hint();
        let mut words = Vec::with_capacity(lower.div_ceil(WORD_BITS));
        let mut len = 0usize;
        let mut word = 0u64;
        for b in iter {
            if b {
                word |= 1u64 << (len % WORD_BITS);
            }
            len += 1;
            if len.is_multiple_of(WORD_BITS) {
                words.push(word);
                word = 0;
            }
        }
        if !len.is_multiple_of(WORD_BITS) {
            words.push(word);
        }
        BitRow { len, words }
    }

    /// Creates a row of `len` bits where bit `i` is `f(i)`, filling one
    /// backing word at a time.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut words = Vec::with_capacity(len.div_ceil(WORD_BITS));
        let mut i = 0;
        while i < len {
            let n = WORD_BITS.min(len - i);
            let mut word = 0u64;
            for bit in 0..n {
                if f(i + bit) {
                    word |= 1u64 << bit;
                }
            }
            words.push(word);
            i += n;
        }
        BitRow { len, words }
    }

    /// Creates a row from the low bits of `value` (LSB = bit 0), `len` wide.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    pub fn from_u64(value: u64, len: usize) -> Self {
        assert!(len <= 64, "from_u64 supports at most 64 bits");
        let mut row = BitRow::zeros(len);
        if len > 0 {
            row.words[0] = if len == 64 { value } else { value & ((1u64 << len) - 1) };
        }
        row
    }

    /// Interprets the first `min(len, 64)` bits as a little-endian integer.
    pub fn to_u64(&self) -> u64 {
        if self.words.is_empty() {
            return 0;
        }
        let mut v = self.words[0];
        if self.len < 64 {
            v &= (1u64 << self.len) - 1;
        }
        v
    }

    /// Number of bits in the row.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the row has zero width.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range ({} bits)", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range ({} bits)", self.len);
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }

    /// Bitwise NOT.
    pub fn not(&self) -> Self {
        let mut out = self.clone();
        for w in &mut out.words {
            *w = !*w;
        }
        out.mask_tail();
        out
    }

    /// Bitwise AND with another row of equal width.
    ///
    /// # Panics
    ///
    /// Panics if widths differ (this and all binary ops below).
    pub fn and(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a & b)
    }

    /// Bitwise OR.
    pub fn or(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a | b)
    }

    /// Bitwise XOR.
    pub fn xor(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a ^ b)
    }

    /// Bitwise XNOR — the single-cycle comparison primitive of the paper.
    pub fn xnor(&self, other: &Self) -> Self {
        let mut out = self.zip_with(other, |a, b| !(a ^ b));
        out.mask_tail();
        out
    }

    /// Bitwise 3-input majority — the TRA (triple-row-activation) primitive
    /// used for in-memory carry generation.
    pub fn maj3(a: &Self, b: &Self, c: &Self) -> Self {
        assert_eq!(a.len, b.len, "maj3 width mismatch");
        assert_eq!(a.len, c.len, "maj3 width mismatch");
        let mut out = BitRow::zeros(a.len);
        for i in 0..a.words.len() {
            let (x, y, z) = (a.words[i], b.words[i], c.words[i]);
            out.words[i] = (x & y) | (x & z) | (y & z);
        }
        out
    }

    /// Overwrites `self` with the content of `src` — a word-level
    /// `copy_from_slice`, the allocation-free row transfer the functional
    /// AAP model is built on.
    ///
    /// # Panics
    ///
    /// Panics if widths differ (this and all `*_into` kernels below).
    pub fn copy_from(&mut self, src: &Self) {
        assert_eq!(self.len, src.len, "bit row width mismatch");
        self.words.copy_from_slice(&src.words);
    }

    /// Clears every bit, keeping the width.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Clears the row and loads `value`'s low `len` bits at offset 0 —
    /// the allocation-free form of `splice(0, &BitRow::from_u64(value,
    /// len))` on a zeroed row.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64` or `len > self.len()`.
    pub fn load_u64(&mut self, value: u64, len: usize) {
        assert!(len <= 64, "load_u64 supports at most 64 bits");
        assert!(len <= self.len, "load of {len} bits into a {} bit row", self.len);
        self.words.fill(0);
        if len > 0 {
            self.words[0] = if len == 64 { value } else { value & ((1u64 << len) - 1) };
        }
    }

    /// `self = !(a | b)` without allocating.
    pub fn nor_into(&mut self, a: &Self, b: &Self) {
        self.zip_into(a, b, |x, y| !(x | y));
        self.mask_tail();
    }

    /// `self = !(a & b)` without allocating.
    pub fn nand_into(&mut self, a: &Self, b: &Self) {
        self.zip_into(a, b, |x, y| !(x & y));
        self.mask_tail();
    }

    /// `self = a ^ b` without allocating.
    pub fn xor_into(&mut self, a: &Self, b: &Self) {
        self.zip_into(a, b, |x, y| x ^ y);
    }

    /// `self = !(a ^ b)` without allocating — the in-place form of the
    /// single-cycle comparison primitive.
    pub fn xnor_into(&mut self, a: &Self, b: &Self) {
        self.zip_into(a, b, |x, y| !(x ^ y));
        self.mask_tail();
    }

    /// `self = a ^ b ^ c` without allocating (the full-adder sum).
    pub fn xor3_into(&mut self, a: &Self, b: &Self, c: &Self) {
        self.zip3_into(a, b, c, |x, y, z| x ^ y ^ z);
    }

    /// `self = MAJ(a, b, c)` without allocating — the in-place form of the
    /// TRA carry primitive.
    pub fn maj3_into(&mut self, a: &Self, b: &Self, c: &Self) {
        self.zip3_into(a, b, c, |x, y, z| (x & y) | (x & z) | (y & z));
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether every bit is one.
    pub fn all_ones(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Whether every bit is zero.
    pub fn all_zeros(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Copies `src` into `self` starting at bit offset `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + src.len() > self.len()`.
    pub fn splice(&mut self, offset: usize, src: &BitRow) {
        assert!(offset + src.len <= self.len, "splice out of range");
        for i in 0..src.len {
            self.set(offset + i, src.get(i));
        }
    }

    /// Extracts `len` bits starting at `offset` into a new row.
    ///
    /// # Panics
    ///
    /// Panics if `offset + len > self.len()`.
    pub fn extract(&self, offset: usize, len: usize) -> BitRow {
        assert!(offset + len <= self.len, "extract out of range");
        BitRow::from_fn(len, |i| self.get(offset + i))
    }

    /// Collects the bits into a `Vec<bool>` (index 0 first).
    pub fn to_bit_vec(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Raw 64-bit backing words (tail bits beyond `len` are zero).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    fn zip_with(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> Self {
        assert_eq!(self.len, other.len, "bit row width mismatch");
        let mut out = BitRow::zeros(self.len);
        for i in 0..self.words.len() {
            out.words[i] = f(self.words[i], other.words[i]);
        }
        out
    }

    fn zip_into(&mut self, a: &Self, b: &Self, f: impl Fn(u64, u64) -> u64) {
        assert_eq!(self.len, a.len, "bit row width mismatch");
        assert_eq!(self.len, b.len, "bit row width mismatch");
        for i in 0..self.words.len() {
            self.words[i] = f(a.words[i], b.words[i]);
        }
    }

    fn zip3_into(&mut self, a: &Self, b: &Self, c: &Self, f: impl Fn(u64, u64, u64) -> u64) {
        assert_eq!(self.len, a.len, "bit row width mismatch");
        assert_eq!(self.len, b.len, "bit row width mismatch");
        assert_eq!(self.len, c.len, "bit row width mismatch");
        for i in 0..self.words.len() {
            self.words[i] = f(a.words[i], b.words[i], c.words[i]);
        }
    }

    fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl fmt::Debug for BitRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitRow[{}; ", self.len)?;
        let shown = self.len.min(64);
        for i in 0..shown {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        if self.len > shown {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BitRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitRow {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitRow::from_bits(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitRow::zeros(130);
        assert_eq!(z.count_ones(), 0);
        assert!(z.all_zeros());
        let o = BitRow::ones(130);
        assert_eq!(o.count_ones(), 130);
        assert!(o.all_ones());
    }

    #[test]
    fn set_get_roundtrip() {
        let mut r = BitRow::zeros(256);
        r.set(0, true);
        r.set(63, true);
        r.set(64, true);
        r.set(255, true);
        assert!(r.get(0) && r.get(63) && r.get(64) && r.get(255));
        assert!(!r.get(1) && !r.get(128));
        assert_eq!(r.count_ones(), 4);
    }

    #[test]
    fn xnor_truth_table() {
        let a = BitRow::from_bits([false, false, true, true]);
        let b = BitRow::from_bits([false, true, false, true]);
        assert_eq!(a.xnor(&b).to_bit_vec(), vec![true, false, false, true]);
    }

    #[test]
    fn maj3_truth_table() {
        // All eight input combinations across eight bit positions.
        let a = BitRow::from_bits([false, false, false, false, true, true, true, true]);
        let b = BitRow::from_bits([false, false, true, true, false, false, true, true]);
        let c = BitRow::from_bits([false, true, false, true, false, true, false, true]);
        let m = BitRow::maj3(&a, &b, &c);
        assert_eq!(m.to_bit_vec(), vec![false, false, false, true, false, true, true, true]);
    }

    #[test]
    fn not_masks_tail() {
        let r = BitRow::zeros(3).not();
        assert_eq!(r.count_ones(), 3);
        assert_eq!(r.as_words()[0], 0b111);
    }

    #[test]
    fn u64_roundtrip() {
        let r = BitRow::from_u64(0xDEAD_BEEF, 48);
        assert_eq!(r.to_u64(), 0xDEAD_BEEF);
        assert_eq!(r.len(), 48);
    }

    #[test]
    fn splice_extract_roundtrip() {
        let mut r = BitRow::zeros(64);
        let payload = BitRow::from_u64(0b101101, 6);
        r.splice(10, &payload);
        assert_eq!(r.extract(10, 6), payload);
    }

    #[test]
    fn display_and_debug() {
        let r = BitRow::from_bits([true, false, true]);
        assert_eq!(r.to_string(), "101");
        assert!(format!("{r:?}").contains("101"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn binary_op_width_mismatch_panics() {
        let _ = BitRow::zeros(4).and(&BitRow::zeros(5));
    }

    #[test]
    fn into_kernels_match_allocating_ops() {
        let a = BitRow::from_fn(130, |i| i % 2 == 0);
        let b = BitRow::from_fn(130, |i| i % 3 == 0);
        let c = BitRow::from_fn(130, |i| i % 5 == 0);
        let mut out = BitRow::zeros(130);
        out.xnor_into(&a, &b);
        assert_eq!(out, a.xnor(&b));
        out.nor_into(&a, &b);
        assert_eq!(out, a.or(&b).not());
        out.nand_into(&a, &b);
        assert_eq!(out, a.and(&b).not());
        out.xor_into(&a, &b);
        assert_eq!(out, a.xor(&b));
        out.maj3_into(&a, &b, &c);
        assert_eq!(out, BitRow::maj3(&a, &b, &c));
        out.xor3_into(&a, &b, &c);
        assert_eq!(out, a.xor(&b).xor(&c));
        out.copy_from(&a);
        assert_eq!(out, a);
    }

    #[test]
    fn into_kernels_keep_tail_bits_zero() {
        // NOR of two all-zero 67-bit rows is all ones; the 61 tail bits of
        // the second word must stay clear so equality/count stay exact.
        let z = BitRow::zeros(67);
        let mut out = BitRow::zeros(67);
        out.nor_into(&z, &z);
        assert_eq!(out, BitRow::ones(67));
        assert_eq!(out.count_ones(), 67);
        assert_eq!(out.as_words()[1], (1u64 << 3) - 1);
    }

    #[test]
    fn direct_packing_matches_per_bit_construction() {
        for len in [0usize, 1, 63, 64, 65, 130] {
            let direct = BitRow::from_fn(len, |i| i % 7 == 0);
            let mut per_bit = BitRow::zeros(len);
            for i in 0..len {
                per_bit.set(i, i % 7 == 0);
            }
            assert_eq!(direct, per_bit, "from_fn len {len}");
            let collected = BitRow::from_bits((0..len).map(|i| i % 7 == 0));
            assert_eq!(collected, per_bit, "from_bits len {len}");
            assert_eq!(collected.len(), len);
        }
    }

    #[test]
    fn from_iter_collects() {
        let r: BitRow = [true, true, false].into_iter().collect();
        assert_eq!(r.len(), 3);
        assert_eq!(r.count_ones(), 2);
    }
}
