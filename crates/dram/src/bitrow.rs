//! Packed bit vectors representing the content of one DRAM row.
//!
//! A [`BitRow`] is a fixed-width sequence of bits stored in 64-bit words.
//! It supports the bulk bitwise operations the PIM-Assembler sense amplifier
//! realizes in-array (XNOR2, 3-input majority, ...) so that the functional
//! simulator can execute in-memory operations bit-accurately.

use std::fmt;

const WORD_BITS: usize = 64;

/// A fixed-width packed bit vector; the content of one DRAM row.
///
/// # Examples
///
/// ```
/// use pim_dram::bitrow::BitRow;
///
/// let a = BitRow::from_bits([true, false, true, true]);
/// let b = BitRow::from_bits([true, true, false, true]);
/// assert_eq!(a.xnor(&b).to_bit_vec(), vec![true, false, false, true]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitRow {
    len: usize,
    words: Vec<u64>,
}

impl BitRow {
    /// Creates an all-zero row of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitRow { len, words: vec![0; len.div_ceil(WORD_BITS)] }
    }

    /// Creates an all-one row of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut row = BitRow { len, words: vec![u64::MAX; len.div_ceil(WORD_BITS)] };
        row.mask_tail();
        row
    }

    /// Creates a row from an iterator of bits (index 0 first).
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let bits: Vec<bool> = bits.into_iter().collect();
        let mut row = BitRow::zeros(bits.len());
        for (i, b) in bits.iter().enumerate() {
            row.set(i, *b);
        }
        row
    }

    /// Creates a row of `len` bits where bit `i` is `f(i)`.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut row = BitRow::zeros(len);
        for i in 0..len {
            row.set(i, f(i));
        }
        row
    }

    /// Creates a row from the low bits of `value` (LSB = bit 0), `len` wide.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    pub fn from_u64(value: u64, len: usize) -> Self {
        assert!(len <= 64, "from_u64 supports at most 64 bits");
        let mut row = BitRow::zeros(len);
        if len > 0 {
            row.words[0] = if len == 64 { value } else { value & ((1u64 << len) - 1) };
        }
        row
    }

    /// Interprets the first `min(len, 64)` bits as a little-endian integer.
    pub fn to_u64(&self) -> u64 {
        if self.words.is_empty() {
            return 0;
        }
        let mut v = self.words[0];
        if self.len < 64 {
            v &= (1u64 << self.len) - 1;
        }
        v
    }

    /// Number of bits in the row.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the row has zero width.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range ({} bits)", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range ({} bits)", self.len);
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }

    /// Bitwise NOT.
    pub fn not(&self) -> Self {
        let mut out = self.clone();
        for w in &mut out.words {
            *w = !*w;
        }
        out.mask_tail();
        out
    }

    /// Bitwise AND with another row of equal width.
    ///
    /// # Panics
    ///
    /// Panics if widths differ (this and all binary ops below).
    pub fn and(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a & b)
    }

    /// Bitwise OR.
    pub fn or(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a | b)
    }

    /// Bitwise XOR.
    pub fn xor(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a ^ b)
    }

    /// Bitwise XNOR — the single-cycle comparison primitive of the paper.
    pub fn xnor(&self, other: &Self) -> Self {
        let mut out = self.zip_with(other, |a, b| !(a ^ b));
        out.mask_tail();
        out
    }

    /// Bitwise 3-input majority — the TRA (triple-row-activation) primitive
    /// used for in-memory carry generation.
    pub fn maj3(a: &Self, b: &Self, c: &Self) -> Self {
        assert_eq!(a.len, b.len, "maj3 width mismatch");
        assert_eq!(a.len, c.len, "maj3 width mismatch");
        let mut out = BitRow::zeros(a.len);
        for i in 0..a.words.len() {
            let (x, y, z) = (a.words[i], b.words[i], c.words[i]);
            out.words[i] = (x & y) | (x & z) | (y & z);
        }
        out
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether every bit is one.
    pub fn all_ones(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Whether every bit is zero.
    pub fn all_zeros(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Copies `src` into `self` starting at bit offset `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + src.len() > self.len()`.
    pub fn splice(&mut self, offset: usize, src: &BitRow) {
        assert!(offset + src.len <= self.len, "splice out of range");
        for i in 0..src.len {
            self.set(offset + i, src.get(i));
        }
    }

    /// Extracts `len` bits starting at `offset` into a new row.
    ///
    /// # Panics
    ///
    /// Panics if `offset + len > self.len()`.
    pub fn extract(&self, offset: usize, len: usize) -> BitRow {
        assert!(offset + len <= self.len, "extract out of range");
        BitRow::from_fn(len, |i| self.get(offset + i))
    }

    /// Collects the bits into a `Vec<bool>` (index 0 first).
    pub fn to_bit_vec(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Raw 64-bit backing words (tail bits beyond `len` are zero).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    fn zip_with(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> Self {
        assert_eq!(self.len, other.len, "bit row width mismatch");
        let mut out = BitRow::zeros(self.len);
        for i in 0..self.words.len() {
            out.words[i] = f(self.words[i], other.words[i]);
        }
        out
    }

    fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl fmt::Debug for BitRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitRow[{}; ", self.len)?;
        let shown = self.len.min(64);
        for i in 0..shown {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        if self.len > shown {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BitRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitRow {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitRow::from_bits(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitRow::zeros(130);
        assert_eq!(z.count_ones(), 0);
        assert!(z.all_zeros());
        let o = BitRow::ones(130);
        assert_eq!(o.count_ones(), 130);
        assert!(o.all_ones());
    }

    #[test]
    fn set_get_roundtrip() {
        let mut r = BitRow::zeros(256);
        r.set(0, true);
        r.set(63, true);
        r.set(64, true);
        r.set(255, true);
        assert!(r.get(0) && r.get(63) && r.get(64) && r.get(255));
        assert!(!r.get(1) && !r.get(128));
        assert_eq!(r.count_ones(), 4);
    }

    #[test]
    fn xnor_truth_table() {
        let a = BitRow::from_bits([false, false, true, true]);
        let b = BitRow::from_bits([false, true, false, true]);
        assert_eq!(a.xnor(&b).to_bit_vec(), vec![true, false, false, true]);
    }

    #[test]
    fn maj3_truth_table() {
        // All eight input combinations across eight bit positions.
        let a = BitRow::from_bits([false, false, false, false, true, true, true, true]);
        let b = BitRow::from_bits([false, false, true, true, false, false, true, true]);
        let c = BitRow::from_bits([false, true, false, true, false, true, false, true]);
        let m = BitRow::maj3(&a, &b, &c);
        assert_eq!(m.to_bit_vec(), vec![false, false, false, true, false, true, true, true]);
    }

    #[test]
    fn not_masks_tail() {
        let r = BitRow::zeros(3).not();
        assert_eq!(r.count_ones(), 3);
        assert_eq!(r.as_words()[0], 0b111);
    }

    #[test]
    fn u64_roundtrip() {
        let r = BitRow::from_u64(0xDEAD_BEEF, 48);
        assert_eq!(r.to_u64(), 0xDEAD_BEEF);
        assert_eq!(r.len(), 48);
    }

    #[test]
    fn splice_extract_roundtrip() {
        let mut r = BitRow::zeros(64);
        let payload = BitRow::from_u64(0b101101, 6);
        r.splice(10, &payload);
        assert_eq!(r.extract(10, 6), payload);
    }

    #[test]
    fn display_and_debug() {
        let r = BitRow::from_bits([true, false, true]);
        assert_eq!(r.to_string(), "101");
        assert!(format!("{r:?}").contains("101"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn binary_op_width_mismatch_panics() {
        let _ = BitRow::zeros(4).and(&BitRow::zeros(5));
    }

    #[test]
    fn from_iter_collects() {
        let r: BitRow = [true, true, false].into_iter().collect();
        assert_eq!(r.len(), 3);
        assert_eq!(r.count_ones(), 2);
    }
}
