//! Error type shared by all fallible operations in this crate.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, DramError>;

/// Errors raised by the DRAM model.
///
/// # Examples
///
/// ```
/// use pim_dram::{controller::Controller, geometry::DramGeometry, DramError};
///
/// let ctrl = Controller::new(DramGeometry::paper_assembly());
/// let err = ctrl.subarray_handle(99, 0, 0, 0).unwrap_err();
/// assert!(matches!(err, DramError::AddressOutOfRange { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DramError {
    /// A chip/bank/MAT/sub-array coordinate exceeded the configured geometry.
    AddressOutOfRange {
        /// Which coordinate was out of range ("chip", "bank", "mat", ...).
        component: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive upper bound for that coordinate.
        limit: usize,
    },
    /// A row index exceeded the sub-array height.
    RowOutOfRange {
        /// The offending row index.
        row: usize,
        /// Number of rows in the sub-array.
        rows: usize,
    },
    /// A row payload did not match the sub-array width.
    WidthMismatch {
        /// Provided width in bits.
        provided: usize,
        /// Expected width in bits (sub-array columns).
        expected: usize,
    },
    /// Multi-row activation requested on rows not wired to the modified
    /// row decoder (only the 8 compute rows support it — paper §II-A).
    NotComputeRow {
        /// The offending row index.
        row: usize,
    },
    /// Multi-row activation with an unsupported number of simultaneous rows.
    BadActivationCount {
        /// Rows requested.
        requested: usize,
        /// Supported counts.
        supported: &'static str,
    },
    /// Two source rows of a simultaneous activation were identical.
    DuplicateSourceRow {
        /// The duplicated row index.
        row: usize,
    },
    /// A model parameter failed validation (e.g. refresh timing with
    /// `tRFC ≥ tREFI`, which would make the device spend all its time
    /// refreshing).
    InvalidParameter {
        /// What was wrong, in plain words.
        what: &'static str,
    },
    /// The sub-array is not owned by the executing component: it is
    /// checked out of the controller into a
    /// [`crate::context::SubarrayContext`], or a context was handed a
    /// command addressed to a sub-array it does not own. Raised whenever
    /// the detach/reattach ownership protocol of parallel dispatch is
    /// violated.
    SubarrayDetached {
        /// The unavailable sub-array.
        subarray: crate::address::SubarrayId,
    },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::AddressOutOfRange { component, index, limit } => {
                write!(f, "{component} index {index} out of range (limit {limit})")
            }
            DramError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range (sub-array has {rows} rows)")
            }
            DramError::WidthMismatch { provided, expected } => {
                write!(f, "row width {provided} does not match sub-array width {expected}")
            }
            DramError::NotComputeRow { row } => {
                write!(f, "row {row} is not wired to the modified row decoder")
            }
            DramError::BadActivationCount { requested, supported } => {
                write!(
                    f,
                    "cannot activate {requested} rows simultaneously (supported: {supported})"
                )
            }
            DramError::DuplicateSourceRow { row } => {
                write!(f, "source row {row} listed more than once in a multi-row activation")
            }
            DramError::InvalidParameter { what } => {
                write!(f, "invalid model parameter: {what}")
            }
            DramError::SubarrayDetached { subarray } => {
                write!(f, "sub-array {subarray} is not owned by the executing component (detached context)")
            }
        }
    }
}

impl std::error::Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let e = DramError::RowOutOfRange { row: 2000, rows: 1024 };
        let s = e.to_string();
        assert!(s.starts_with("row 2000"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DramError>();
    }

    #[test]
    fn all_variants_display() {
        let variants = [
            DramError::AddressOutOfRange { component: "bank", index: 9, limit: 8 },
            DramError::RowOutOfRange { row: 1, rows: 1 },
            DramError::WidthMismatch { provided: 1, expected: 256 },
            DramError::NotComputeRow { row: 3 },
            DramError::BadActivationCount { requested: 4, supported: "2 or 3" },
            DramError::DuplicateSourceRow { row: 1016 },
            DramError::InvalidParameter { what: "tRFC must be below tREFI" },
            DramError::SubarrayDetached {
                subarray: crate::address::SubarrayId { chip: 0, bank: 1, mat: 0, subarray: 3 },
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
