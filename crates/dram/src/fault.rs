//! Seeded sense-amplifier read-out fault injection.
//!
//! Process variation makes the shifted-VTC threshold detectors of the
//! reconfigurable sense amplifier (Fig. 2) the platform's dominant error
//! source: a marginal detector misreads a charge level and the *read-out*
//! of an activation flips, while the stored cells keep their value. The
//! injector models exactly that failure mode — each bit of a sensed
//! read-out ([`crate::context::SubarrayContext::read_row`], `aap2`,
//! `aap3_carry` results) flips independently with a configured
//! probability — so verification harnesses can measure how the assembly
//! pipeline degrades under realistic sensing errors.
//!
//! Injection is deterministic: every sub-array context draws from its own
//! counter-based stream seeded by `(seed, sub-array index)`, so a faulted
//! run reproduces bit-for-bit for any worker count or dispatch
//! interleaving.

use crate::bitrow::BitRow;

/// Fault-injection configuration: per-bit flip probability and seed.
///
/// # Examples
///
/// ```
/// use pim_dram::fault::FaultConfig;
///
/// let cfg = FaultConfig::new(1e-3, 42);
/// assert_eq!(cfg.flip_rate, 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that any single sensed bit flips on read-out.
    pub flip_rate: f64,
    /// Base seed; each sub-array derives an independent stream from it.
    pub seed: u64,
}

impl FaultConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `flip_rate` is in `[0, 1]` and finite.
    pub fn new(flip_rate: f64, seed: u64) -> Self {
        assert!(
            flip_rate.is_finite() && (0.0..=1.0).contains(&flip_rate),
            "flip rate must be in [0, 1], got {flip_rate}"
        );
        FaultConfig { flip_rate, seed }
    }
}

/// Per-sub-array fault state: a splitmix64 stream plus flip counters.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// `flip_rate` scaled to the full `u64` range for branch-free draws.
    threshold: u64,
    state: u64,
    flips: u64,
    readouts: u64,
}

impl FaultInjector {
    /// Creates the injector for stream `stream` (the sub-array's linear
    /// index) under `config`.
    pub fn new(config: &FaultConfig, stream: u64) -> Self {
        // `u64::MAX as f64` rounds to 2^64; the float→int cast saturates,
        // so flip_rate == 1.0 flips every bit.
        let threshold = (config.flip_rate * u64::MAX as f64) as u64;
        FaultInjector {
            threshold,
            state: config.seed ^ splitmix64(stream.wrapping_add(0x5851_F42D_4C95_7F2D)),
            flips: 0,
            readouts: 0,
        }
    }

    /// Bits flipped so far.
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// Read-outs passed through the injector so far (corrupted or not).
    pub fn readouts(&self) -> u64 {
        self.readouts
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// Applies per-bit flips to one sensed read-out.
    pub fn corrupt(&mut self, row: &mut BitRow) {
        self.readouts += 1;
        if self.threshold == 0 {
            // Keep the stream position independent of the row width so a
            // zero-rate injector still advances deterministically.
            let _ = self.next();
            return;
        }
        for i in 0..row.len() {
            if self.next() < self.threshold {
                row.set(i, !row.get(i));
                self.flips += 1;
            }
        }
    }
}

/// splitmix64 finalizer.
fn splitmix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_flips() {
        let mut inj = FaultInjector::new(&FaultConfig::new(0.0, 1), 0);
        let mut row = BitRow::from_fn(256, |i| i % 3 == 0);
        let orig = row.clone();
        for _ in 0..50 {
            inj.corrupt(&mut row);
        }
        assert_eq!(row, orig);
        assert_eq!(inj.flips(), 0);
        assert_eq!(inj.readouts(), 50);
    }

    #[test]
    fn full_rate_flips_everything() {
        let mut inj = FaultInjector::new(&FaultConfig::new(1.0, 2), 0);
        let mut row = BitRow::zeros(128);
        inj.corrupt(&mut row);
        assert!(row.all_ones());
        assert_eq!(inj.flips(), 128);
    }

    #[test]
    fn flip_rate_is_statistically_honest() {
        let mut inj = FaultInjector::new(&FaultConfig::new(0.01, 3), 0);
        let mut row = BitRow::zeros(256);
        for _ in 0..1000 {
            inj.corrupt(&mut row);
        }
        // 256,000 draws at 1%: expect ~2560 flips; flips re-flip bits so
        // count the injector's counter, not the row parity.
        let rate = inj.flips() as f64 / 256_000.0;
        assert!((0.008..0.012).contains(&rate), "measured rate {rate}");
    }

    #[test]
    fn streams_are_independent_and_deterministic() {
        let cfg = FaultConfig::new(0.05, 7);
        let run = |stream: u64| {
            let mut inj = FaultInjector::new(&cfg, stream);
            let mut row = BitRow::zeros(256);
            inj.corrupt(&mut row);
            row
        };
        assert_eq!(run(0), run(0));
        assert_ne!(run(0), run(1));
    }

    #[test]
    #[should_panic(expected = "flip rate")]
    fn out_of_range_rate_rejected() {
        let _ = FaultConfig::new(1.5, 0);
    }
}
