//! The AAP execution port abstraction.
//!
//! Kernel code (PIM_XNOR comparison, PIM_Add carry-save trees, DPU
//! reductions) is written once against [`AapPort`] and runs unchanged
//! through either the [`crate::controller::Controller`] façade (serial,
//! traced, globally accounted) or a detached
//! [`crate::context::SubarrayContext`] (thread-local, ledger accounted).
//! Both implementations execute bit-identically and charge identical
//! integer unit costs, which is what makes parallel dispatch equivalence
//! checkable byte for byte.

use crate::address::{RowAddr, SubarrayId};
use crate::bitrow::BitRow;
use crate::context::SubarrayContext;
use crate::controller::Controller;
use crate::error::{DramError, Result};
use crate::geometry::DramGeometry;
use crate::sense_amp::SaMode;
use pim_obsv::{HistKey, Metric};

/// A target that can execute AAP commands against addressed sub-arrays.
///
/// The [`Controller`] accepts any sub-array of its geometry; a
/// [`SubarrayContext`] accepts only its own sub-array and returns
/// [`DramError::SubarrayDetached`] for any other id, which is exactly the
/// disjointness invariant a parallel dispatcher relies on.
pub trait AapPort {
    /// The configured geometry.
    fn geometry(&self) -> &DramGeometry;

    /// Address of compute row `i` (`x1..x8` ⇒ `i ∈ 0..8`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    fn compute_row(&self, i: usize) -> RowAddr {
        RowAddr(self.geometry().compute_row(i))
    }

    /// Writes one row from the host (charged as `WR`).
    ///
    /// # Errors
    ///
    /// Propagates addressing/width/ownership errors.
    fn write_row(&mut self, id: SubarrayId, row: RowAddr, data: &BitRow) -> Result<()>;

    /// Reads one row to the host (charged as `RD`).
    ///
    /// # Errors
    ///
    /// Propagates addressing/ownership errors.
    fn read_row(&mut self, id: SubarrayId, row: RowAddr) -> Result<BitRow>;

    /// Reads a row without charging a command.
    ///
    /// # Errors
    ///
    /// Propagates addressing/ownership errors.
    fn peek_row(&mut self, id: SubarrayId, row: RowAddr) -> Result<BitRow>;

    /// Writes a row without charging a command (pair with
    /// [`AapPort::record_synthetic`]).
    ///
    /// # Errors
    ///
    /// Propagates addressing/width/ownership errors.
    fn poke_row(&mut self, id: SubarrayId, row: RowAddr, data: &BitRow) -> Result<()>;

    /// Type-1 AAP: in-array copy.
    ///
    /// # Errors
    ///
    /// Propagates addressing/ownership errors.
    fn aap_copy(&mut self, id: SubarrayId, src: RowAddr, dst: RowAddr) -> Result<()>;

    /// Type-2 AAP: two-row activation evaluating `mode`.
    ///
    /// # Errors
    ///
    /// Propagates decoder/addressing/ownership errors.
    fn aap2(
        &mut self,
        id: SubarrayId,
        mode: SaMode,
        srcs: [RowAddr; 2],
        dst: RowAddr,
    ) -> Result<BitRow>;

    /// Single-cycle in-memory XNOR2.
    ///
    /// # Errors
    ///
    /// Same as [`AapPort::aap2`].
    fn aap2_xnor(&mut self, id: SubarrayId, srcs: [RowAddr; 2], dst: RowAddr) -> Result<BitRow> {
        self.aap2(id, SaMode::Xnor, srcs, dst)
    }

    /// Sum cycle of the in-memory adder.
    ///
    /// # Errors
    ///
    /// Same as [`AapPort::aap2`].
    fn aap2_sum(&mut self, id: SubarrayId, srcs: [RowAddr; 2], dst: RowAddr) -> Result<BitRow> {
        self.aap2(id, SaMode::CarrySum, srcs, dst)
    }

    /// Type-2 AAP whose sensed output the caller does not need.
    ///
    /// Semantically identical to [`AapPort::aap2`] with the return value
    /// dropped; implementations backed by the functional model skip
    /// materializing the sensed row entirely, which keeps the bulk
    /// execution path allocation-free.
    ///
    /// # Errors
    ///
    /// Same as [`AapPort::aap2`].
    fn aap2_discard(
        &mut self,
        id: SubarrayId,
        mode: SaMode,
        srcs: [RowAddr; 2],
        dst: RowAddr,
    ) -> Result<()> {
        self.aap2(id, mode, srcs, dst).map(|_| ())
    }

    /// Type-3 AAP (TRA): 3-input majority / carry, latched.
    ///
    /// # Errors
    ///
    /// Propagates decoder/addressing/ownership errors.
    fn aap3_carry(&mut self, id: SubarrayId, srcs: [RowAddr; 3], dst: RowAddr) -> Result<BitRow>;

    /// Type-3 AAP whose sensed output the caller does not need (see
    /// [`AapPort::aap2_discard`]).
    ///
    /// # Errors
    ///
    /// Same as [`AapPort::aap3_carry`].
    fn aap3_carry_discard(
        &mut self,
        id: SubarrayId,
        srcs: [RowAddr; 3],
        dst: RowAddr,
    ) -> Result<()> {
        self.aap3_carry(id, srcs, dst).map(|_| ())
    }

    /// Clears a sub-array's SA carry latch.
    ///
    /// # Errors
    ///
    /// Propagates ownership errors.
    fn reset_latch(&mut self, id: SubarrayId) -> Result<()>;

    /// Records one DPU scalar operation.
    fn dpu_op(&mut self);

    /// Records `n` DPU scalar operations.
    fn dpu_ops(&mut self, n: u64) {
        for _ in 0..n {
            self.dpu_op();
        }
    }

    /// Records `count` synthetic commands of `mnemonic` without executing
    /// them.
    ///
    /// # Panics
    ///
    /// Panics on an unknown mnemonic.
    fn record_synthetic(&mut self, mnemonic: &str, count: u64);

    /// Adds `n` to a stage-level observability metric (hash probes, graph
    /// k-mers, …). Default is a no-op so mock ports need not care; the
    /// controller and context implementations feed their counter blocks.
    fn record_metric(&mut self, metric: Metric, n: u64) {
        let _ = (metric, n);
    }

    /// Records one observability histogram sample (probe-chain length,
    /// trail length, …). Default is a no-op.
    fn record_value(&mut self, key: HistKey, value: u64) {
        let _ = (key, value);
    }
}

impl AapPort for Controller {
    fn geometry(&self) -> &DramGeometry {
        Controller::geometry(self)
    }

    fn write_row(&mut self, id: SubarrayId, row: RowAddr, data: &BitRow) -> Result<()> {
        Controller::write_row(self, id, row, data)
    }

    fn read_row(&mut self, id: SubarrayId, row: RowAddr) -> Result<BitRow> {
        Controller::read_row(self, id, row)
    }

    fn peek_row(&mut self, id: SubarrayId, row: RowAddr) -> Result<BitRow> {
        Controller::peek_row(self, id, row)
    }

    fn poke_row(&mut self, id: SubarrayId, row: RowAddr, data: &BitRow) -> Result<()> {
        Controller::poke_row(self, id, row, data)
    }

    fn aap_copy(&mut self, id: SubarrayId, src: RowAddr, dst: RowAddr) -> Result<()> {
        Controller::aap_copy(self, id, src, dst)
    }

    fn aap2(
        &mut self,
        id: SubarrayId,
        mode: SaMode,
        srcs: [RowAddr; 2],
        dst: RowAddr,
    ) -> Result<BitRow> {
        Controller::aap2(self, id, mode, srcs, dst)
    }

    fn aap2_discard(
        &mut self,
        id: SubarrayId,
        mode: SaMode,
        srcs: [RowAddr; 2],
        dst: RowAddr,
    ) -> Result<()> {
        Controller::aap2_discard(self, id, mode, srcs, dst)
    }

    fn aap3_carry(&mut self, id: SubarrayId, srcs: [RowAddr; 3], dst: RowAddr) -> Result<BitRow> {
        Controller::aap3_carry(self, id, srcs, dst)
    }

    fn aap3_carry_discard(
        &mut self,
        id: SubarrayId,
        srcs: [RowAddr; 3],
        dst: RowAddr,
    ) -> Result<()> {
        Controller::aap3_carry_discard(self, id, srcs, dst)
    }

    fn reset_latch(&mut self, id: SubarrayId) -> Result<()> {
        Controller::try_reset_latch(self, id)
    }

    fn dpu_op(&mut self) {
        Controller::dpu_op(self)
    }

    fn record_synthetic(&mut self, mnemonic: &str, count: u64) {
        Controller::record_synthetic(self, mnemonic, count)
    }

    fn record_metric(&mut self, metric: Metric, n: u64) {
        Controller::record_metric(self, metric, n)
    }

    fn record_value(&mut self, key: HistKey, value: u64) {
        Controller::record_value(self, key, value)
    }
}

impl SubarrayContext {
    fn own(&self, id: SubarrayId) -> Result<()> {
        if id == self.id() {
            Ok(())
        } else {
            Err(DramError::SubarrayDetached { subarray: id })
        }
    }
}

impl AapPort for SubarrayContext {
    fn geometry(&self) -> &DramGeometry {
        SubarrayContext::geometry(self)
    }

    fn write_row(&mut self, id: SubarrayId, row: RowAddr, data: &BitRow) -> Result<()> {
        self.own(id)?;
        SubarrayContext::write_row(self, row, data)
    }

    fn read_row(&mut self, id: SubarrayId, row: RowAddr) -> Result<BitRow> {
        self.own(id)?;
        SubarrayContext::read_row(self, row)
    }

    fn peek_row(&mut self, id: SubarrayId, row: RowAddr) -> Result<BitRow> {
        self.own(id)?;
        SubarrayContext::peek_row(self, row)
    }

    fn poke_row(&mut self, id: SubarrayId, row: RowAddr, data: &BitRow) -> Result<()> {
        self.own(id)?;
        SubarrayContext::poke_row(self, row, data)
    }

    fn aap_copy(&mut self, id: SubarrayId, src: RowAddr, dst: RowAddr) -> Result<()> {
        self.own(id)?;
        SubarrayContext::aap_copy(self, src, dst)
    }

    fn aap2(
        &mut self,
        id: SubarrayId,
        mode: SaMode,
        srcs: [RowAddr; 2],
        dst: RowAddr,
    ) -> Result<BitRow> {
        self.own(id)?;
        SubarrayContext::aap2(self, mode, srcs, dst)
    }

    fn aap2_discard(
        &mut self,
        id: SubarrayId,
        mode: SaMode,
        srcs: [RowAddr; 2],
        dst: RowAddr,
    ) -> Result<()> {
        self.own(id)?;
        SubarrayContext::aap2_discard(self, mode, srcs, dst)
    }

    fn aap3_carry(&mut self, id: SubarrayId, srcs: [RowAddr; 3], dst: RowAddr) -> Result<BitRow> {
        self.own(id)?;
        SubarrayContext::aap3_carry(self, srcs, dst)
    }

    fn aap3_carry_discard(
        &mut self,
        id: SubarrayId,
        srcs: [RowAddr; 3],
        dst: RowAddr,
    ) -> Result<()> {
        self.own(id)?;
        SubarrayContext::aap3_carry_discard(self, srcs, dst)
    }

    fn reset_latch(&mut self, id: SubarrayId) -> Result<()> {
        self.own(id)?;
        SubarrayContext::reset_latch(self);
        Ok(())
    }

    fn dpu_op(&mut self) {
        SubarrayContext::dpu_op(self)
    }

    fn record_synthetic(&mut self, mnemonic: &str, count: u64) {
        SubarrayContext::record_synthetic(self, mnemonic, count)
    }

    fn record_metric(&mut self, metric: Metric, n: u64) {
        SubarrayContext::record_metric(self, metric, n)
    }

    fn record_value(&mut self, key: HistKey, value: u64) {
        SubarrayContext::record_value(self, key, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xnor_via_port<P: AapPort>(port: &mut P, id: SubarrayId) -> BitRow {
        let cols = port.geometry().cols;
        let a = BitRow::from_fn(cols, |i| i % 2 == 0);
        let b = BitRow::from_fn(cols, |i| i % 3 == 0);
        port.write_row(id, RowAddr(1), &a).unwrap();
        port.write_row(id, RowAddr(2), &b).unwrap();
        port.aap_copy(id, RowAddr(1), port.compute_row(0)).unwrap();
        port.aap_copy(id, RowAddr(2), port.compute_row(1)).unwrap();
        port.aap2_xnor(id, [port.compute_row(0), port.compute_row(1)], RowAddr(5)).unwrap()
    }

    #[test]
    fn controller_and_context_execute_identically() {
        let g = DramGeometry::tiny();
        let mut ctrl = Controller::new(g);
        let id = ctrl.subarray_handle(0, 0, 0, 0).unwrap();
        let through_ctrl = xnor_via_port(&mut ctrl, id);

        let mut ctrl2 = Controller::new(g);
        let mut ctx = ctrl2.detach_context(id).unwrap();
        let through_ctx = xnor_via_port(&mut ctx, id);
        ctrl2.reattach_context(ctx).unwrap();

        assert_eq!(through_ctrl, through_ctx);
        assert_eq!(*ctrl.stats(), *ctrl2.stats());
    }

    #[test]
    fn context_rejects_foreign_subarrays() {
        let g = DramGeometry::tiny();
        let mut ctrl = Controller::new(g);
        let mine = ctrl.subarray_handle(0, 0, 0, 0).unwrap();
        let other = ctrl.subarray_handle(0, 1, 0, 0).unwrap();
        let mut ctx = ctrl.detach_context(mine).unwrap();
        let err = AapPort::read_row(&mut ctx, other, RowAddr(0)).unwrap_err();
        assert!(matches!(err, DramError::SubarrayDetached { subarray } if subarray == other));
        ctrl.reattach_context(ctx).unwrap();
    }
}
