//! The PIM-Assembler memory controller (Ctrl in Fig. 1a).
//!
//! The controller is a thin address-mapping façade over a set of
//! per-sub-array execution contexts ([`SubarrayContext`]): it validates
//! addresses, routes each command to the owning context (which executes it
//! bit-accurately and charges its local [`EnergyLedger`]), and maintains
//! the merged totals, the derived [`CommandStats`] view, and the optional
//! [`CommandTrace`]. The three AAP instruction types of §II-B map directly
//! onto [`Controller::aap_copy`], [`Controller::aap2`], and
//! [`Controller::aap3_carry`].
//!
//! For parallel dispatch a context can be *detached*
//! ([`Controller::detach_context`]), driven from a worker thread through
//! the [`crate::port::AapPort`] surface, and *reattached*
//! ([`Controller::reattach_context`]); the work done while detached merges
//! back into the controller's integer totals exactly, independent of
//! reattach order. Commands executed on detached contexts are not traced.

use std::collections::BTreeMap;

use crate::address::{RowAddr, SubarrayId};
use crate::bitrow::BitRow;
use crate::command::DramCommand;
use crate::context::SubarrayContext;
use crate::energy::EnergyParams;
use crate::error::{DramError, Result};
use crate::fault::{FaultConfig, FaultInjector};
use crate::geometry::DramGeometry;
use crate::ledger::{CommandClass, CommandCosts, EnergyLedger};
use crate::profile::{ActivationModel, BackendProfile};
use crate::sense_amp::SaMode;
use crate::stats::CommandStats;
use crate::subarray::Subarray;
use crate::timing::TimingParams;
use crate::trace::CommandTrace;
use pim_obsv::{
    ContextObsv, CounterSet, HistKey, Metric, MetricsRegistry, MetricsSnapshot, ScopeId, Stage,
};

/// Metrics-registry state carried while metrics collection is enabled.
///
/// Hot paths only touch the fixed-array [`ContextObsv`] blocks; this state
/// is consulted at stage boundaries, where each context's counter delta
/// since its last fold mark is attributed to the current [`Stage`].
#[derive(Debug, Clone, Default)]
struct ObsvState {
    registry: MetricsRegistry,
    /// Per-context counter values at the last fold, so only new work is
    /// attributed to the current stage.
    marks: BTreeMap<SubarrayId, CounterSet>,
    global_mark: CounterSet,
}

/// Routes commands to per-sub-array contexts with merged accounting.
///
/// See the crate-level example for a typical copy–copy–XNOR sequence.
#[derive(Debug, Clone)]
pub struct Controller {
    geometry: DramGeometry,
    timing: TimingParams,
    energy: EnergyParams,
    costs: CommandCosts,
    /// Physical activation semantics every context is built with.
    activation: ActivationModel,
    /// Name of the backend profile in effect (diagnostics/reporting).
    backend_name: &'static str,
    /// Attached contexts, materialized lazily on first touch. `BTreeMap`
    /// keeps iteration (and thus merged-state inspection) deterministic.
    contexts: BTreeMap<SubarrayId, SubarrayContext>,
    /// Ledger snapshots of currently detached contexts, taken at detach
    /// time so reattach can merge exactly the work done while away.
    in_flight: BTreeMap<SubarrayId, EnergyLedger>,
    /// Commands not attributable to a sub-array (DPU ops, synthetic
    /// traffic recorded at the controller).
    global: EnergyLedger,
    /// Merged totals: `global` + every context's ledger (attached or
    /// reattached). Maintained incrementally.
    total: EnergyLedger,
    /// Floating-point view of `total`, refreshed after every mutation so
    /// [`Controller::stats`] can hand out a reference.
    stats_cache: CommandStats,
    trace: Option<CommandTrace>,
    /// Armed fault model, applied to every context (see [`crate::fault`]).
    fault: Option<FaultConfig>,
    /// Observability counters for globally-charged traffic (DPU ops,
    /// synthetic commands, stage-level metrics recorded at the controller).
    global_obsv: ContextObsv,
    /// Stage label new counter deltas are attributed to at fold time.
    stage: Stage,
    /// Scoped metrics accumulation; `None` until
    /// [`Controller::enable_metrics`] (boxed — the registry is cold state).
    obsv: Option<Box<ObsvState>>,
}

impl Controller {
    /// Creates a controller with default DDR4-2133 / 45 nm parameters.
    pub fn new(geometry: DramGeometry) -> Self {
        Controller::with_params(geometry, TimingParams::default(), EnergyParams::default())
    }

    /// Creates a controller with explicit timing and energy parameters and
    /// the destructive (DRAM) activation model — the historical surface;
    /// byte-identical to pre-profile behavior.
    pub fn with_params(geometry: DramGeometry, timing: TimingParams, energy: EnergyParams) -> Self {
        Controller::with_profile(
            geometry,
            &BackendProfile {
                name: "pim-assembler",
                activation: ActivationModel::DestructiveCharge,
                timing,
                energy,
            },
        )
    }

    /// Creates a controller from a [`BackendProfile`]: the profile's
    /// timing/energy tables become the per-class unit costs and its
    /// activation model is threaded into every sub-array context (existing
    /// and lazily materialized).
    pub fn with_profile(geometry: DramGeometry, profile: &BackendProfile) -> Self {
        let BackendProfile { name, activation, timing, energy } = *profile;
        let costs = CommandCosts::new(&timing, &energy, geometry.cols);
        Controller {
            geometry,
            timing,
            energy,
            costs,
            activation,
            backend_name: name,
            contexts: BTreeMap::new(),
            in_flight: BTreeMap::new(),
            global: EnergyLedger::default(),
            total: EnergyLedger::default(),
            stats_cache: CommandStats::default(),
            trace: None,
            fault: None,
            global_obsv: ContextObsv::default(),
            stage: Stage::Setup,
            obsv: None,
        }
    }

    /// Enables scoped metrics collection, resetting all observability
    /// counters so the registry covers exactly the traffic from this call
    /// on. The per-command counter increments themselves are always on
    /// (fixed-array adds); enabling metrics only adds stage-boundary folds.
    pub fn enable_metrics(&mut self) {
        for ctx in self.contexts.values_mut() {
            ctx.reset_obsv();
        }
        self.global_obsv = ContextObsv::default();
        self.stage = Stage::Setup;
        self.obsv = Some(Box::default());
    }

    /// Whether scoped metrics collection is enabled.
    pub fn metrics_enabled(&self) -> bool {
        self.obsv.is_some()
    }

    /// The stage new counter deltas are currently attributed to.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// Marks a stage boundary: folds every attached context's counter
    /// delta (and the global delta) into the registry under the *current*
    /// stage, then switches attribution to `stage`. A no-op router when
    /// metrics are disabled.
    pub fn set_stage(&mut self, stage: Stage) {
        self.fold_pending();
        self.stage = stage;
    }

    /// Folds unattributed counter deltas into the registry under the
    /// current stage. Detached contexts are skipped; their work is
    /// attributed at the next fold after reattach (dispatch batches never
    /// span a stage boundary).
    fn fold_pending(&mut self) {
        let Some(state) = self.obsv.as_deref_mut() else { return };
        let stage = self.stage;
        for (id, ctx) in &self.contexts {
            let current = ctx.obsv().counters;
            let mark = state.marks.get(id).copied().unwrap_or_default();
            let delta = current.since(&mark);
            if !delta.is_zero() {
                let linear = id.linear_index(&self.geometry) as u32;
                state.registry.fold(ScopeId::subarray(stage, linear), &delta);
                state.marks.insert(*id, current);
            }
        }
        let delta = self.global_obsv.counters.since(&state.global_mark);
        if !delta.is_zero() {
            state.registry.fold(ScopeId::global(stage), &delta);
            state.global_mark = self.global_obsv.counters;
        }
    }

    /// Adds `n` to a stage-level metric on the controller's global
    /// counters (attributed to the current stage at the next fold).
    pub fn record_metric(&mut self, metric: Metric, n: u64) {
        self.global_obsv.record(metric, n);
    }

    /// Records one histogram sample on the controller's global counters.
    pub fn record_value(&mut self, key: HistKey, value: u64) {
        self.global_obsv.record_value(key, value);
    }

    /// Builds the flat metrics snapshot: per-stage aggregates, per-stage ×
    /// per-sub-array detail, merged histograms, and ledger-derived run
    /// totals. Returns `None` unless [`Controller::enable_metrics`] was
    /// called. Counter keys are execution-order deterministic — a serial
    /// run and a worker-pool run of the same workload produce identical
    /// snapshots.
    pub fn metrics_snapshot(&mut self) -> Option<MetricsSnapshot> {
        self.fold_pending();
        let state = self.obsv.as_deref()?;
        let mut snap = MetricsSnapshot::new();
        for (scope, counters) in state.registry.iter() {
            for (metric, value) in counters.iter() {
                if value == 0 {
                    continue;
                }
                let (stage, metric) = (scope.stage.name(), metric.name());
                snap.add_counter(format!("{stage}.{metric}"), value);
                if !scope.is_global() {
                    snap.add_counter(format!("{stage}.sub{:05}.{metric}", scope.subarray), value);
                }
            }
        }
        let mut hists = self.global_obsv.hists;
        for ctx in self.contexts.values() {
            hists.merge(&ctx.obsv().hists);
        }
        for key in HistKey::ALL {
            let h = hists.get(key);
            if h.is_empty() {
                continue;
            }
            // Partition-item occupancy is a per-dispatch-batch sample, so
            // its bucket shape depends on how the run was chunked; it lives
            // in the host section, outside the deterministic contract.
            let host = key == HistKey::PartitionItems;
            for (bucket, count) in h.nonzero_buckets() {
                let name = format!("hist.{}.b{bucket:02}", key.name());
                if host {
                    *snap.host.entry(name).or_insert(0) += count;
                } else {
                    snap.add_counter(name, count);
                }
            }
            let total = format!("hist.{}.total", key.name());
            if host {
                *snap.host.entry(total).or_insert(0) += h.total_samples();
            } else {
                snap.add_counter(total, h.total_samples());
            }
        }
        snap.add_counter("total.commands", self.total.total_commands());
        snap.add_counter("total.time_ps", self.total.total_time_ps());
        snap.add_counter("total.energy_fj", self.total.total_energy_fj());
        snap.add_counter("total.energy_pj", self.total.total_energy_pj());
        Some(snap)
    }

    /// Arms sense-amp read-out fault injection: every sub-array context
    /// (existing attached ones and any created later) flips each sensed
    /// bit with `config.flip_rate` probability from its own deterministic
    /// per-sub-array stream. Stored array content is never corrupted —
    /// only what read-outs return. Arm *before* running a workload;
    /// contexts detached at the moment of arming keep running clean until
    /// they are next created fresh.
    pub fn inject_faults(&mut self, config: FaultConfig) {
        for (id, ctx) in self.contexts.iter_mut() {
            let stream = id.linear_index(&self.geometry) as u64;
            ctx.set_fault_injector(Some(FaultInjector::new(&config, stream)));
        }
        self.fault = Some(config);
    }

    /// The armed fault configuration, if any.
    pub fn fault_config(&self) -> Option<&FaultConfig> {
        self.fault.as_ref()
    }

    /// Total bits flipped by fault injection across all attached contexts.
    pub fn fault_flips(&self) -> u64 {
        self.contexts.values().map(SubarrayContext::fault_flips).sum()
    }

    /// Enables command tracing, keeping the most recent `capacity` commands
    /// (see [`CommandTrace`]). Pass 0 to count drops without retaining.
    /// Only commands issued through the controller are traced; work on
    /// detached contexts is not.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(CommandTrace::new(capacity));
    }

    /// Disables tracing and returns the collected trace, if any.
    pub fn take_trace(&mut self) -> Option<CommandTrace> {
        self.trace.take()
    }

    /// The active trace, if tracing is enabled.
    pub fn command_trace(&self) -> Option<&CommandTrace> {
        self.trace.as_ref()
    }

    /// The configured geometry.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// The timing parameters in effect.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// The energy parameters in effect.
    pub fn energy(&self) -> &EnergyParams {
        &self.energy
    }

    /// The quantized per-class unit costs shared by the controller and all
    /// of its contexts.
    pub fn costs(&self) -> &CommandCosts {
        &self.costs
    }

    /// The activation model every sub-array context executes with.
    pub fn activation_model(&self) -> ActivationModel {
        self.activation
    }

    /// The name of the backend profile this controller was built from
    /// (`"pim-assembler"` for the historical constructors).
    pub fn backend_name(&self) -> &'static str {
        self.backend_name
    }

    /// Validated sub-array handle for (chip, bank, mat, subarray).
    ///
    /// # Errors
    ///
    /// Returns [`crate::DramError::AddressOutOfRange`] on bad coordinates.
    pub fn subarray_handle(
        &self,
        chip: usize,
        bank: usize,
        mat: usize,
        subarray: usize,
    ) -> Result<SubarrayId> {
        SubarrayId::new(&self.geometry, chip, bank, mat, subarray)
    }

    /// Address of compute row `i` (`x1..x8` ⇒ `i ∈ 0..8`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    pub fn compute_row(&self, i: usize) -> RowAddr {
        RowAddr(self.geometry.compute_row(i))
    }

    /// The attached context owning `id`, materialized on first touch.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::SubarrayDetached`] while `id` is checked out.
    fn live_context(&mut self, id: SubarrayId) -> Result<&mut SubarrayContext> {
        if self.in_flight.contains_key(&id) {
            return Err(DramError::SubarrayDetached { subarray: id });
        }
        let (geometry, costs, fault) = (self.geometry, self.costs, self.fault);
        let activation = self.activation;
        Ok(self
            .contexts
            .entry(id)
            .or_insert_with(|| Self::fresh_context(id, geometry, costs, activation, fault)))
    }

    /// A fresh context for `id`, armed with the fault model when one is
    /// configured.
    fn fresh_context(
        id: SubarrayId,
        geometry: DramGeometry,
        costs: CommandCosts,
        activation: ActivationModel,
        fault: Option<FaultConfig>,
    ) -> SubarrayContext {
        let mut ctx = SubarrayContext::new(id, geometry, costs, activation);
        if let Some(cfg) = fault {
            let stream = id.linear_index(&geometry) as u64;
            ctx.set_fault_injector(Some(FaultInjector::new(&cfg, stream)));
        }
        ctx
    }

    /// Writes one row from the host.
    ///
    /// # Errors
    ///
    /// Propagates sub-array addressing/width errors; fails on detached
    /// sub-arrays.
    pub fn write_row(
        &mut self,
        id: SubarrayId,
        row: impl Into<RowAddr>,
        data: &BitRow,
    ) -> Result<()> {
        let row = row.into();
        self.live_context(id)?.write_row(row, data)?;
        self.account(Some(id), &DramCommand::Write { dst: row });
        Ok(())
    }

    /// Reads one row to the host.
    ///
    /// # Errors
    ///
    /// Propagates sub-array addressing errors; fails on detached
    /// sub-arrays.
    pub fn read_row(&mut self, id: SubarrayId, row: impl Into<RowAddr>) -> Result<BitRow> {
        let row = row.into();
        let data = self.live_context(id)?.read_row(row)?;
        self.account(Some(id), &DramCommand::Read { src: row });
        Ok(data)
    }

    /// Reads a row *without* charging a command (debug/verification view).
    ///
    /// # Errors
    ///
    /// Propagates sub-array addressing errors; fails on detached
    /// sub-arrays.
    pub fn peek_row(&mut self, id: SubarrayId, row: impl Into<RowAddr>) -> Result<BitRow> {
        self.live_context(id)?.peek_row(row)
    }

    /// Writes a row *without* charging a command. Callers pair this with
    /// [`Controller::record_synthetic`] when the physical transfer is an
    /// in-DRAM movement whose cost differs from a host row write (e.g.
    /// staging a k-mer from the sequence bank into a temp row).
    ///
    /// # Errors
    ///
    /// Propagates sub-array addressing/width errors; fails on detached
    /// sub-arrays.
    pub fn poke_row(
        &mut self,
        id: SubarrayId,
        row: impl Into<RowAddr>,
        data: &BitRow,
    ) -> Result<()> {
        self.live_context(id)?.poke_row(row, data)
    }

    /// Type-1 AAP: in-array copy (RowClone-FPM).
    ///
    /// # Errors
    ///
    /// Propagates sub-array addressing errors; fails on detached
    /// sub-arrays.
    pub fn aap_copy(
        &mut self,
        id: SubarrayId,
        src: impl Into<RowAddr>,
        dst: impl Into<RowAddr>,
    ) -> Result<()> {
        let (src, dst) = (src.into(), dst.into());
        self.live_context(id)?.aap_copy(src, dst)?;
        self.account(Some(id), &DramCommand::Aap { src, dst });
        Ok(())
    }

    /// Type-2 AAP: two-row activation evaluating `mode`, result to `dst`
    /// (and destructively to the source compute rows).
    ///
    /// # Errors
    ///
    /// Propagates decoder and addressing errors (sources must be compute
    /// rows; see [`crate::subarray::Subarray::op2`]); fails on detached
    /// sub-arrays.
    pub fn aap2(
        &mut self,
        id: SubarrayId,
        mode: SaMode,
        srcs: [RowAddr; 2],
        dst: impl Into<RowAddr>,
    ) -> Result<BitRow> {
        let dst = dst.into();
        let out = self.live_context(id)?.aap2(mode, srcs, dst)?;
        self.account(Some(id), &DramCommand::Aap2 { srcs, dst, mode });
        Ok(out)
    }

    /// Type-2 AAP whose sensed output the caller does not need. Identical
    /// array state, accounting, and trace as [`Controller::aap2`], but the
    /// sensed result row is never materialized — the allocation-free bulk
    /// path executors use when they drop the return value.
    ///
    /// # Errors
    ///
    /// Same as [`Controller::aap2`].
    pub fn aap2_discard(
        &mut self,
        id: SubarrayId,
        mode: SaMode,
        srcs: [RowAddr; 2],
        dst: impl Into<RowAddr>,
    ) -> Result<()> {
        let dst = dst.into();
        self.live_context(id)?.aap2_discard(mode, srcs, dst)?;
        self.account(Some(id), &DramCommand::Aap2 { srcs, dst, mode });
        Ok(())
    }

    /// Single-cycle in-memory XNOR2 (the comparison primitive).
    ///
    /// # Errors
    ///
    /// Same as [`Controller::aap2`].
    pub fn aap2_xnor(
        &mut self,
        id: SubarrayId,
        srcs: [RowAddr; 2],
        dst: impl Into<RowAddr>,
    ) -> Result<BitRow> {
        self.aap2(id, SaMode::Xnor, srcs, dst)
    }

    /// Sum cycle of the in-memory adder: XOR of the two source rows and the
    /// SA-latched carry from the previous [`Controller::aap3_carry`].
    ///
    /// # Errors
    ///
    /// Same as [`Controller::aap2`].
    pub fn aap2_sum(
        &mut self,
        id: SubarrayId,
        srcs: [RowAddr; 2],
        dst: impl Into<RowAddr>,
    ) -> Result<BitRow> {
        self.aap2(id, SaMode::CarrySum, srcs, dst)
    }

    /// Type-3 AAP (Ambit TRA): 3-input majority / carry, latched in the SA.
    ///
    /// # Errors
    ///
    /// Propagates decoder and addressing errors; fails on detached
    /// sub-arrays.
    pub fn aap3_carry(
        &mut self,
        id: SubarrayId,
        srcs: [RowAddr; 3],
        dst: impl Into<RowAddr>,
    ) -> Result<BitRow> {
        let dst = dst.into();
        let out = self.live_context(id)?.aap3_carry(srcs, dst)?;
        self.account(Some(id), &DramCommand::Aap3 { srcs, dst, mode: SaMode::Carry });
        Ok(out)
    }

    /// Type-3 AAP whose sensed output the caller does not need (see
    /// [`Controller::aap2_discard`]).
    ///
    /// # Errors
    ///
    /// Same as [`Controller::aap3_carry`].
    pub fn aap3_carry_discard(
        &mut self,
        id: SubarrayId,
        srcs: [RowAddr; 3],
        dst: impl Into<RowAddr>,
    ) -> Result<()> {
        let dst = dst.into();
        self.live_context(id)?.aap3_carry_discard(srcs, dst)?;
        self.account(Some(id), &DramCommand::Aap3 { srcs, dst, mode: SaMode::Carry });
        Ok(())
    }

    /// Clears a sub-array's SA carry latch (start of a new addition).
    ///
    /// # Panics
    ///
    /// Panics if the sub-array is detached (use
    /// [`Controller::try_reset_latch`] for a fallible version).
    pub fn reset_latch(&mut self, id: SubarrayId) {
        self.try_reset_latch(id).expect("reset_latch on a detached sub-array");
    }

    /// Fallible variant of [`Controller::reset_latch`].
    ///
    /// # Errors
    ///
    /// Returns [`DramError::SubarrayDetached`] while `id` is checked out.
    pub fn try_reset_latch(&mut self, id: SubarrayId) -> Result<()> {
        self.live_context(id)?.reset_latch();
        Ok(())
    }

    /// Records one DPU scalar operation (MAT-level digital processing unit).
    pub fn dpu_op(&mut self) {
        self.global_obsv.record(Metric::DpuOps, 1);
        self.account(None, &DramCommand::DpuOp);
    }

    /// Records `n` DPU scalar operations.
    ///
    /// Without tracing this is a single batched ledger charge
    /// (`charge_many`, exactly `n` single charges by construction); with
    /// tracing enabled it issues per-op so every command lands in the
    /// trace individually.
    pub fn dpu_ops(&mut self, n: u64) {
        if self.trace.is_some() {
            for _ in 0..n {
                self.dpu_op();
            }
            return;
        }
        self.global.charge_many(CommandClass::Dpu, &self.costs, n);
        self.total.charge_many(CommandClass::Dpu, &self.costs, n);
        self.global_obsv.record(Metric::DpuOps, n);
        self.stats_cache = self.total.to_stats();
    }

    /// Records `count` synthetic commands of the given mnemonic without
    /// executing them — used when a stage's traffic is accounted
    /// analytically (e.g. degree accumulation of a graph too large for the
    /// functional dense mapping). Synthetic commands are charged to the
    /// controller's global ledger and are not traced.
    ///
    /// # Panics
    ///
    /// Panics on an unknown mnemonic.
    pub fn record_synthetic(&mut self, mnemonic: &str, count: u64) {
        if count == 0 {
            return;
        }
        let class = CommandClass::from_mnemonic(mnemonic)
            .unwrap_or_else(|| panic!("unknown command mnemonic {mnemonic:?}"));
        self.global.charge_many(class, &self.costs, count);
        self.total.charge_many(class, &self.costs, count);
        crate::context::record_class_obsv(&mut self.global_obsv, class, count);
        self.stats_cache = self.total.to_stats();
    }

    /// Accumulated command statistics (derived from the merged integer
    /// totals, so equal command multisets give bit-identical stats).
    pub fn stats(&self) -> &CommandStats {
        &self.stats_cache
    }

    /// The merged integer ledger (global + all contexts).
    pub fn ledger(&self) -> &EnergyLedger {
        &self.total
    }

    /// The global ledger alone: commands not attributable to a sub-array
    /// (DPU ops, synthetic traffic). Conservation invariant:
    /// `global + Σ attached-context ledgers == total` whenever no context
    /// is detached — verification harnesses assert exactly this.
    pub fn global_ledger(&self) -> &EnergyLedger {
        &self.global
    }

    /// Whether any context is currently checked out (conservation over
    /// attached ledgers only holds when this is `false`).
    pub fn has_detached_contexts(&self) -> bool {
        !self.in_flight.is_empty()
    }

    /// Takes and resets the statistics (the global ledger and every
    /// *attached* context's ledger; work on currently detached contexts is
    /// merged when they reattach).
    pub fn take_stats(&mut self) -> CommandStats {
        let out = self.stats_cache;
        self.global = EnergyLedger::default();
        self.total = EnergyLedger::default();
        for ctx in self.contexts.values_mut() {
            ctx.reset_ledger();
            ctx.reset_obsv();
        }
        self.global_obsv = ContextObsv::default();
        self.stage = Stage::Setup;
        if let Some(state) = self.obsv.as_deref_mut() {
            *state = ObsvState::default();
        }
        self.stats_cache = CommandStats::default();
        out
    }

    /// Restores checkpointed accounting onto a (typically fresh)
    /// controller: the global ledger plus each listed context's local
    /// ledger, with the merged total and stats cache recomputed. Contexts
    /// are materialized on demand; observability counters are *not*
    /// restored (the session layer folds checkpointed snapshots instead).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::SubarrayDetached`] if any listed sub-array is
    /// currently checked out.
    pub fn restore_accounting(
        &mut self,
        global: EnergyLedger,
        contexts: &[(SubarrayId, EnergyLedger)],
    ) -> Result<()> {
        for &(id, _) in contexts {
            if self.in_flight.contains_key(&id) {
                return Err(DramError::SubarrayDetached { subarray: id });
            }
        }
        self.global = global;
        for &(id, ledger) in contexts {
            self.live_context(id)?.set_ledger(ledger);
        }
        let mut total = self.global;
        for ctx in self.contexts.values() {
            total.merge(ctx.ledger());
        }
        self.total = total;
        self.stats_cache = self.total.to_stats();
        Ok(())
    }

    /// Checks a context out of the controller for independent (possibly
    /// cross-thread) execution. Until reattached, every controller
    /// operation addressing `id` fails with
    /// [`DramError::SubarrayDetached`].
    ///
    /// # Errors
    ///
    /// Returns [`DramError::SubarrayDetached`] if `id` is already checked
    /// out.
    pub fn detach_context(&mut self, id: SubarrayId) -> Result<SubarrayContext> {
        if self.in_flight.contains_key(&id) {
            return Err(DramError::SubarrayDetached { subarray: id });
        }
        let ctx = self.contexts.remove(&id).unwrap_or_else(|| {
            Self::fresh_context(id, self.geometry, self.costs, self.activation, self.fault)
        });
        self.in_flight.insert(id, *ctx.ledger());
        Ok(ctx)
    }

    /// Returns a detached context, merging the work it performed while
    /// away into the controller's totals. Merging is integer-exact and
    /// order-independent across contexts.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::SubarrayDetached`] if the context was not
    /// detached from this controller (no matching checkout).
    pub fn reattach_context(&mut self, ctx: SubarrayContext) -> Result<()> {
        let id = ctx.id();
        let snapshot =
            self.in_flight.remove(&id).ok_or(DramError::SubarrayDetached { subarray: id })?;
        let delta = ctx.ledger().since(&snapshot);
        self.total.merge(&delta);
        self.stats_cache = self.total.to_stats();
        self.contexts.insert(id, ctx);
        Ok(())
    }

    /// The attached context for `id`, if that sub-array has been touched.
    pub fn context(&self, id: SubarrayId) -> Option<&SubarrayContext> {
        self.contexts.get(&id)
    }

    /// Read access to a touched sub-array's state (inspection in
    /// tests/tools); `None` if untouched or detached.
    pub fn subarray(&self, id: SubarrayId) -> Option<&Subarray> {
        self.contexts.get(&id).map(SubarrayContext::subarray)
    }

    /// A touched sub-array's local ledger; `None` if untouched or
    /// detached.
    pub fn subarray_ledger(&self, id: SubarrayId) -> Option<&EnergyLedger> {
        self.contexts.get(&id).map(SubarrayContext::ledger)
    }

    /// Sub-arrays that have been touched (attached contexts, in address
    /// order).
    pub fn touched_subarrays(&self) -> impl Iterator<Item = SubarrayId> + '_ {
        self.contexts.keys().copied()
    }

    /// Per-sub-array `(commands, busy_ns)` totals in address order — the
    /// input shape of [`crate::schedule::queues_from_totals`] for makespan
    /// estimation of the recorded traffic.
    pub fn subarray_command_totals(&self) -> Vec<(u64, f64)> {
        self.contexts
            .values()
            .map(|ctx| (ctx.ledger().total_commands(), ctx.ledger().total_time_ps() as f64 / 1e3))
            .filter(|&(commands, _)| commands > 0)
            .collect()
    }

    fn account(&mut self, id: Option<SubarrayId>, cmd: &DramCommand) {
        let class = CommandClass::of(cmd);
        if id.is_none() {
            // Sub-array commands were already charged to their context.
            self.global.charge(class, &self.costs);
        }
        self.total.charge(class, &self.costs);
        self.stats_cache = self.total.to_stats();
        if let Some(trace) = &mut self.trace {
            trace.record(self.total.total_time_ps(), id, *cmd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl() -> (Controller, SubarrayId) {
        let c = Controller::new(DramGeometry::tiny());
        let id = c.subarray_handle(0, 0, 0, 0).unwrap();
        (c, id)
    }

    #[test]
    fn xnor_sequence_counts_commands() {
        let (mut c, id) = ctrl();
        let cols = c.geometry().cols;
        let a = BitRow::from_fn(cols, |i| i % 2 == 0);
        let b = BitRow::from_fn(cols, |i| i % 3 == 0);
        c.write_row(id, 1, &a).unwrap();
        c.write_row(id, 2, &b).unwrap();
        c.aap_copy(id, 1, c.compute_row(0)).unwrap();
        c.aap_copy(id, 2, c.compute_row(1)).unwrap();
        let out = c.aap2_xnor(id, [c.compute_row(0), c.compute_row(1)], 5).unwrap();
        assert_eq!(out, a.xnor(&b));
        let s = c.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.aap, 2);
        assert_eq!(s.aap2, 1);
        assert!(s.serial_ns > 0.0 && s.energy_nj > 0.0);
    }

    #[test]
    fn full_adder_through_controller() {
        // Verify a complete ripple step: given rows A, B and carry-in row C,
        // carry-out = MAJ(A,B,C), sum = A^B^C, as the paper sequences it:
        // 1) TRA(A,B,C) latches the carry *and* smashes the compute rows, so
        //    the controller re-copies A,B for the sum cycle.
        let (mut c, id) = ctrl();
        let cols = c.geometry().cols;
        let a = BitRow::from_fn(cols, |i| (i / 2) % 2 == 0);
        let b = BitRow::from_fn(cols, |i| (i / 3) % 2 == 0);
        let cin = BitRow::zeros(cols);
        c.write_row(id, 1, &a).unwrap();
        c.write_row(id, 2, &b).unwrap();
        c.write_row(id, 3, &cin).unwrap();
        let (x1, x2, x3) = (c.compute_row(0), c.compute_row(1), c.compute_row(2));
        // Sum first (carry-in is latched zero after reset), then carry-out.
        c.reset_latch(id);
        c.aap_copy(id, 1, x1).unwrap();
        c.aap_copy(id, 2, x2).unwrap();
        let sum = c.aap2_sum(id, [x1, x2], 8).unwrap();
        assert_eq!(sum, a.xor(&b).xor(&cin));
        c.aap_copy(id, 1, x1).unwrap();
        c.aap_copy(id, 2, x2).unwrap();
        c.aap_copy(id, 3, x3).unwrap();
        let carry = c.aap3_carry(id, [x1, x2, x3], 9).unwrap();
        assert_eq!(carry, BitRow::maj3(&a, &b, &cin));
    }

    #[test]
    fn peek_does_not_account() {
        let (mut c, id) = ctrl();
        let cols = c.geometry().cols;
        c.write_row(id, 0, &BitRow::ones(cols)).unwrap();
        let before = *c.stats();
        let _ = c.peek_row(id, 0).unwrap();
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn dpu_ops_accumulate() {
        let (mut c, _) = ctrl();
        c.dpu_ops(5);
        assert_eq!(c.stats().dpu, 5);
    }

    #[test]
    fn trace_records_issued_commands() {
        let (mut c, id) = ctrl();
        c.enable_trace(8);
        let cols = c.geometry().cols;
        c.write_row(id, 0, &BitRow::ones(cols)).unwrap();
        c.aap_copy(id, 0, 1).unwrap();
        c.dpu_op();
        let trace = c.take_trace().unwrap();
        assert_eq!(trace.len(), 3);
        let kinds: Vec<&str> = trace.entries().map(|e| e.command.mnemonic()).collect();
        assert_eq!(kinds, vec!["WR", "AAP", "DPU"]);
        // DPU is global (no sub-array).
        assert!(trace.entries().last().unwrap().subarray.is_none());
        // Tracing disabled after take.
        assert!(c.command_trace().is_none());
    }

    #[test]
    fn take_stats_resets() {
        let (mut c, id) = ctrl();
        let cols = c.geometry().cols;
        c.write_row(id, 0, &BitRow::zeros(cols)).unwrap();
        let taken = c.take_stats();
        assert_eq!(taken.writes, 1);
        assert_eq!(c.stats().total_commands(), 0);
    }

    #[test]
    fn detached_subarray_rejects_controller_ops() {
        let (mut c, id) = ctrl();
        let cols = c.geometry().cols;
        let ctx = c.detach_context(id).unwrap();
        let err = c.write_row(id, 0, &BitRow::zeros(cols)).unwrap_err();
        assert!(matches!(err, DramError::SubarrayDetached { subarray } if subarray == id));
        // Double detach is also a protocol violation.
        assert!(c.detach_context(id).is_err());
        // Other sub-arrays keep working.
        let other = c.subarray_handle(0, 1, 0, 0).unwrap();
        c.write_row(other, 0, &BitRow::zeros(cols)).unwrap();
        c.reattach_context(ctx).unwrap();
        c.write_row(id, 0, &BitRow::zeros(cols)).unwrap();
    }

    #[test]
    fn detached_work_merges_back_exactly() {
        let (mut c, id) = ctrl();
        let cols = c.geometry().cols;
        // Prior attached work, so the detach snapshot is non-trivial.
        c.write_row(id, 0, &BitRow::ones(cols)).unwrap();

        let mut serial = Controller::new(DramGeometry::tiny());
        serial.write_row(id, 0, &BitRow::ones(cols)).unwrap();

        let mut ctx = c.detach_context(id).unwrap();
        ctx.write_row(1, &BitRow::zeros(cols)).unwrap();
        ctx.aap_copy(1, ctx.compute_row(0)).unwrap();
        ctx.dpu_op();
        c.reattach_context(ctx).unwrap();

        serial.write_row(id, 1, &BitRow::zeros(cols)).unwrap();
        serial.aap_copy(id, 1, serial.compute_row(0)).unwrap();
        serial.dpu_op();

        assert_eq!(*c.stats(), *serial.stats());
        assert_eq!(c.ledger(), serial.ledger());
        // Array state matches byte for byte.
        assert_eq!(c.peek_row(id, 1).unwrap(), serial.peek_row(id, 1).unwrap());
    }

    #[test]
    fn reattach_of_unknown_context_is_rejected() {
        let (mut c, id) = ctrl();
        let ctx = c.detach_context(id).unwrap();
        let mut other = Controller::new(DramGeometry::tiny());
        let stray = other.detach_context(id).unwrap();
        c.reattach_context(ctx).unwrap();
        // `c` has no outstanding checkout for `id` any more.
        assert!(matches!(
            c.reattach_context(stray),
            Err(DramError::SubarrayDetached { subarray }) if subarray == id
        ));
    }

    #[test]
    fn fault_injection_corrupts_readouts_but_not_stored_state() {
        let (mut c, id) = ctrl();
        let cols = c.geometry().cols;
        c.inject_faults(crate::fault::FaultConfig::new(1.0, 9));
        c.write_row(id, 0, &BitRow::zeros(cols)).unwrap();
        let read = c.read_row(id, 0).unwrap();
        assert!(read.all_ones(), "rate-1.0 injection must flip every sensed bit");
        // The cells themselves are clean: peek is the host debug view and
        // bypasses the sense path.
        assert_eq!(c.peek_row(id, 0).unwrap(), BitRow::zeros(cols));
        assert_eq!(c.fault_flips(), cols as u64);
        // Detached execution inherits the armed model.
        let mut ctx = c.detach_context(id).unwrap();
        assert!(ctx.read_row(0).unwrap().all_ones());
        c.reattach_context(ctx).unwrap();
        assert_eq!(c.fault_flips(), 2 * cols as u64);
    }

    #[test]
    fn global_ledger_plus_context_ledgers_equals_total() {
        let (mut c, id) = ctrl();
        let cols = c.geometry().cols;
        c.write_row(id, 0, &BitRow::ones(cols)).unwrap();
        c.aap_copy(id, 0, 1).unwrap();
        c.dpu_ops(3);
        c.record_synthetic("AAP", 2);
        let mut sum = *c.global_ledger();
        for sid in c.touched_subarrays().collect::<Vec<_>>() {
            sum.merge(c.subarray_ledger(sid).unwrap());
        }
        assert!(!c.has_detached_contexts());
        assert_eq!(sum, *c.ledger());
    }

    #[test]
    fn metrics_attribute_deltas_to_stages_across_detach() {
        let (mut c, id) = ctrl();
        let cols = c.geometry().cols;
        c.enable_metrics();
        // Setup-stage traffic.
        c.write_row(id, 0, &BitRow::ones(cols)).unwrap();
        c.record_synthetic("WR", 3);
        c.set_stage(Stage::Hashmap);
        // Hashmap-stage traffic, partly on a detached context.
        c.aap_copy(id, 0, 1).unwrap();
        let mut ctx = c.detach_context(id).unwrap();
        ctx.aap_copy(0, 2).unwrap();
        ctx.dpu_op();
        c.reattach_context(ctx).unwrap();
        c.set_stage(Stage::Graph);
        c.dpu_ops(5);

        let snap = c.metrics_snapshot().expect("metrics enabled");
        assert_eq!(snap.counter("setup.host_writes"), 4);
        assert_eq!(snap.counter("setup.sub00000.host_writes"), 1);
        assert_eq!(snap.counter("hashmap.aap"), 2);
        assert_eq!(snap.counter("hashmap.dpu"), 1);
        assert_eq!(snap.counter("graph.dpu"), 5);
        assert_eq!(snap.counter("total.commands"), c.ledger().total_commands());
        assert_eq!(snap.counter("total.energy_pj"), c.ledger().total_energy_pj());

        // Snapshotting is idempotent: no double-folding of deltas.
        let again = c.metrics_snapshot().unwrap();
        assert_eq!(again, snap);
    }

    #[test]
    fn metrics_disabled_returns_no_snapshot() {
        let (mut c, id) = ctrl();
        let cols = c.geometry().cols;
        c.write_row(id, 0, &BitRow::zeros(cols)).unwrap();
        assert!(!c.metrics_enabled());
        assert!(c.metrics_snapshot().is_none());
    }

    #[test]
    fn restore_accounting_reproduces_ledgers_and_stats() {
        let (mut c, id) = ctrl();
        let cols = c.geometry().cols;
        c.write_row(id, 0, &BitRow::ones(cols)).unwrap();
        c.aap_copy(id, 0, 1).unwrap();
        c.dpu_ops(3);
        c.record_synthetic("AAP2", 2);

        let global = *c.global_ledger();
        let contexts: Vec<_> = c
            .touched_subarrays()
            .collect::<Vec<_>>()
            .into_iter()
            .map(|sid| (sid, *c.subarray_ledger(sid).unwrap()))
            .collect();

        let mut fresh = Controller::new(DramGeometry::tiny());
        fresh.restore_accounting(global, &contexts).unwrap();
        assert_eq!(fresh.ledger(), c.ledger());
        assert_eq!(fresh.global_ledger(), c.global_ledger());
        assert_eq!(*fresh.stats(), *c.stats());
        assert_eq!(fresh.subarray_ledger(id), c.subarray_ledger(id));
        // Accounting keeps accumulating on top of the restored baseline.
        fresh.dpu_op();
        c.dpu_op();
        assert_eq!(fresh.ledger(), c.ledger());
    }

    #[test]
    fn partition_items_histogram_lands_in_host_section() {
        let (mut c, id) = ctrl();
        let cols = c.geometry().cols;
        c.enable_metrics();
        c.write_row(id, 0, &BitRow::zeros(cols)).unwrap();
        c.record_value(HistKey::PartitionItems, 4);
        c.record_value(HistKey::HashProbeLen, 1);
        let snap = c.metrics_snapshot().unwrap();
        assert!(snap.counters.keys().all(|k| !k.contains("partition_items")), "{snap:?}");
        assert_eq!(snap.host.get("hist.partition_items.total"), Some(&1));
        assert_eq!(snap.counter("hist.hash_probe_len.total"), 1);
    }

    #[test]
    fn per_subarray_accounting_sums_to_the_total() {
        let (mut c, id) = ctrl();
        let other = c.subarray_handle(0, 1, 0, 0).unwrap();
        let cols = c.geometry().cols;
        c.write_row(id, 0, &BitRow::ones(cols)).unwrap();
        c.write_row(other, 0, &BitRow::ones(cols)).unwrap();
        c.aap_copy(other, 0, 1).unwrap();
        c.dpu_op();
        let mut sum = *c.subarray_ledger(id).unwrap();
        sum.merge(c.subarray_ledger(other).unwrap());
        // The DPU op lives in the global ledger, not any sub-array's.
        assert_eq!(sum.total_commands() + 1, c.ledger().total_commands());
        let totals = c.subarray_command_totals();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals.iter().map(|t| t.0).sum::<u64>(), 3);
    }
}
