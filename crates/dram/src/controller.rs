//! The PIM-Assembler memory controller (Ctrl in Fig. 1a).
//!
//! The controller is the single entry point through which software issues
//! commands: it validates addresses, executes each command bit-accurately
//! against the [`MemoryGroup`], and records latency/energy in
//! [`CommandStats`]. The three AAP instruction types of §II-B map directly
//! onto [`Controller::aap_copy`], [`Controller::aap2`], and
//! [`Controller::aap3_carry`].

use crate::address::{RowAddr, SubarrayId};
use crate::bitrow::BitRow;
use crate::command::DramCommand;
use crate::energy::EnergyParams;
use crate::error::Result;
use crate::geometry::DramGeometry;
use crate::hierarchy::MemoryGroup;
use crate::sense_amp::SaMode;
use crate::stats::CommandStats;
use crate::timing::TimingParams;
use crate::trace::CommandTrace;

/// Executes commands against the memory group with full accounting.
///
/// See the crate-level example for a typical copy–copy–XNOR sequence.
#[derive(Debug, Clone)]
pub struct Controller {
    memory: MemoryGroup,
    timing: TimingParams,
    energy: EnergyParams,
    stats: CommandStats,
    trace: Option<CommandTrace>,
}

impl Controller {
    /// Creates a controller with default DDR4-2133 / 45 nm parameters.
    pub fn new(geometry: DramGeometry) -> Self {
        Controller::with_params(geometry, TimingParams::default(), EnergyParams::default())
    }

    /// Creates a controller with explicit timing and energy parameters.
    pub fn with_params(geometry: DramGeometry, timing: TimingParams, energy: EnergyParams) -> Self {
        Controller {
            memory: MemoryGroup::new(geometry),
            timing,
            energy,
            stats: CommandStats::default(),
            trace: None,
        }
    }

    /// Enables command tracing, keeping the most recent `capacity` commands
    /// (see [`CommandTrace`]). Pass 0 to count drops without retaining.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(CommandTrace::new(capacity));
    }

    /// Disables tracing and returns the collected trace, if any.
    pub fn take_trace(&mut self) -> Option<CommandTrace> {
        self.trace.take()
    }

    /// The active trace, if tracing is enabled.
    pub fn command_trace(&self) -> Option<&CommandTrace> {
        self.trace.as_ref()
    }

    /// The configured geometry.
    pub fn geometry(&self) -> &DramGeometry {
        self.memory.geometry()
    }

    /// The timing parameters in effect.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// The energy parameters in effect.
    pub fn energy(&self) -> &EnergyParams {
        &self.energy
    }

    /// Validated sub-array handle for (chip, bank, mat, subarray).
    ///
    /// # Errors
    ///
    /// Returns [`crate::DramError::AddressOutOfRange`] on bad coordinates.
    pub fn subarray_handle(&self, chip: usize, bank: usize, mat: usize, subarray: usize) -> Result<SubarrayId> {
        SubarrayId::new(self.memory.geometry(), chip, bank, mat, subarray)
    }

    /// Address of compute row `i` (`x1..x8` ⇒ `i ∈ 0..8`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    pub fn compute_row(&self, i: usize) -> RowAddr {
        RowAddr(self.memory.geometry().compute_row(i))
    }

    /// Writes one row from the host.
    ///
    /// # Errors
    ///
    /// Propagates sub-array addressing/width errors.
    pub fn write_row(&mut self, id: SubarrayId, row: impl Into<RowAddr>, data: &BitRow) -> Result<()> {
        let row = row.into();
        let cols = self.memory.geometry().cols;
        self.memory.subarray_mut(id).write(row, data)?;
        self.account(Some(id), &DramCommand::Write { dst: row }, cols);
        Ok(())
    }

    /// Reads one row to the host.
    ///
    /// # Errors
    ///
    /// Propagates sub-array addressing errors.
    pub fn read_row(&mut self, id: SubarrayId, row: impl Into<RowAddr>) -> Result<BitRow> {
        let row = row.into();
        let cols = self.memory.geometry().cols;
        let data = self.memory.subarray_mut(id).read(row)?;
        self.account(Some(id), &DramCommand::Read { src: row }, cols);
        Ok(data)
    }

    /// Reads a row *without* charging a command (debug/verification view).
    ///
    /// # Errors
    ///
    /// Propagates sub-array addressing errors.
    pub fn peek_row(&mut self, id: SubarrayId, row: impl Into<RowAddr>) -> Result<BitRow> {
        self.memory.subarray_mut(id).read(row.into())
    }

    /// Writes a row *without* charging a command. Callers pair this with
    /// [`Controller::record_synthetic`] when the physical transfer is an
    /// in-DRAM movement whose cost differs from a host row write (e.g.
    /// staging a k-mer from the sequence bank into a temp row).
    ///
    /// # Errors
    ///
    /// Propagates sub-array addressing/width errors.
    pub fn poke_row(&mut self, id: SubarrayId, row: impl Into<RowAddr>, data: &BitRow) -> Result<()> {
        self.memory.subarray_mut(id).write(row.into(), data)
    }

    /// Type-1 AAP: in-array copy (RowClone-FPM).
    ///
    /// # Errors
    ///
    /// Propagates sub-array addressing errors.
    pub fn aap_copy(&mut self, id: SubarrayId, src: impl Into<RowAddr>, dst: impl Into<RowAddr>) -> Result<()> {
        let (src, dst) = (src.into(), dst.into());
        let cols = self.memory.geometry().cols;
        self.memory.subarray_mut(id).copy(src, dst)?;
        self.account(Some(id), &DramCommand::Aap { src, dst }, cols);
        Ok(())
    }

    /// Type-2 AAP: two-row activation evaluating `mode`, result to `dst`
    /// (and destructively to the source compute rows).
    ///
    /// # Errors
    ///
    /// Propagates decoder and addressing errors (sources must be compute
    /// rows; see [`crate::subarray::Subarray::op2`]).
    pub fn aap2(
        &mut self,
        id: SubarrayId,
        mode: SaMode,
        srcs: [RowAddr; 2],
        dst: impl Into<RowAddr>,
    ) -> Result<BitRow> {
        let dst = dst.into();
        let cols = self.memory.geometry().cols;
        let out = self.memory.subarray_mut(id).op2(mode, srcs, dst)?;
        self.account(Some(id), &DramCommand::Aap2 { srcs, dst, mode }, cols);
        Ok(out)
    }

    /// Single-cycle in-memory XNOR2 (the comparison primitive).
    ///
    /// # Errors
    ///
    /// Same as [`Controller::aap2`].
    pub fn aap2_xnor(&mut self, id: SubarrayId, srcs: [RowAddr; 2], dst: impl Into<RowAddr>) -> Result<BitRow> {
        self.aap2(id, SaMode::Xnor, srcs, dst)
    }

    /// Sum cycle of the in-memory adder: XOR of the two source rows and the
    /// SA-latched carry from the previous [`Controller::aap3_carry`].
    ///
    /// # Errors
    ///
    /// Same as [`Controller::aap2`].
    pub fn aap2_sum(&mut self, id: SubarrayId, srcs: [RowAddr; 2], dst: impl Into<RowAddr>) -> Result<BitRow> {
        self.aap2(id, SaMode::CarrySum, srcs, dst)
    }

    /// Type-3 AAP (Ambit TRA): 3-input majority / carry, latched in the SA.
    ///
    /// # Errors
    ///
    /// Propagates decoder and addressing errors.
    pub fn aap3_carry(&mut self, id: SubarrayId, srcs: [RowAddr; 3], dst: impl Into<RowAddr>) -> Result<BitRow> {
        let dst = dst.into();
        let cols = self.memory.geometry().cols;
        let out = self.memory.subarray_mut(id).op3_carry(srcs, dst)?;
        self.account(Some(id), &DramCommand::Aap3 { srcs, dst, mode: SaMode::Carry }, cols);
        Ok(out)
    }

    /// Clears a sub-array's SA carry latch (start of a new addition).
    pub fn reset_latch(&mut self, id: SubarrayId) {
        self.memory.subarray_mut(id).reset_latch();
    }

    /// Records one DPU scalar operation (MAT-level digital processing unit).
    pub fn dpu_op(&mut self) {
        let cols = self.memory.geometry().cols;
        self.account(None, &DramCommand::DpuOp, cols);
    }

    /// Records `n` DPU scalar operations.
    pub fn dpu_ops(&mut self, n: u64) {
        for _ in 0..n {
            self.dpu_op();
        }
    }

    /// Records `count` synthetic commands of the given mnemonic without
    /// executing them — used when a stage's traffic is accounted
    /// analytically (e.g. degree accumulation of a graph too large for the
    /// functional dense mapping).
    ///
    /// # Panics
    ///
    /// Panics on an unknown mnemonic.
    pub fn record_synthetic(&mut self, mnemonic: &str, count: u64) {
        if count == 0 {
            return;
        }
        let cols = self.memory.geometry().cols;
        let probe = match mnemonic {
            "RD" => DramCommand::Read { src: RowAddr(0) },
            "WR" => DramCommand::Write { dst: RowAddr(0) },
            "AAP" => DramCommand::Aap { src: RowAddr(0), dst: RowAddr(0) },
            "AAP2" => DramCommand::Aap2 { srcs: [RowAddr(0), RowAddr(1)], dst: RowAddr(0), mode: SaMode::Xnor },
            "AAP3" => DramCommand::Aap3 {
                srcs: [RowAddr(0), RowAddr(1), RowAddr(2)],
                dst: RowAddr(0),
                mode: SaMode::Carry,
            },
            "DPU" => DramCommand::DpuOp,
            other => panic!("unknown command mnemonic {other:?}"),
        };
        let lat = probe.latency_ns(&self.timing, cols);
        let en = probe.energy_nj(&self.energy, cols);
        for _ in 0..count.min(1) {
            // Record one to classify, then add the rest arithmetically.
            self.stats.record(&probe, lat, en);
        }
        if count > 1 {
            let extra = count - 1;
            match mnemonic {
                "RD" => self.stats.reads += extra,
                "WR" => self.stats.writes += extra,
                "AAP" => self.stats.aap += extra,
                "AAP2" => self.stats.aap2 += extra,
                "AAP3" => self.stats.aap3 += extra,
                "DPU" => self.stats.dpu += extra,
                _ => unreachable!(),
            }
            self.stats.serial_ns += lat * extra as f64;
            self.stats.energy_nj += en * extra as f64;
        }
    }

    /// Accumulated command statistics.
    pub fn stats(&self) -> &CommandStats {
        &self.stats
    }

    /// Takes and resets the statistics.
    pub fn take_stats(&mut self) -> CommandStats {
        std::mem::take(&mut self.stats)
    }

    /// Direct access to the memory group (for inspection in tests/tools).
    pub fn memory(&self) -> &MemoryGroup {
        &self.memory
    }

    fn account(&mut self, id: Option<SubarrayId>, cmd: &DramCommand, cols: usize) {
        let lat = cmd.latency_ns(&self.timing, cols);
        let en = cmd.energy_nj(&self.energy, cols);
        self.stats.record(cmd, lat, en);
        if let Some(trace) = &mut self.trace {
            trace.record(self.stats.serial_ns, id, *cmd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl() -> (Controller, SubarrayId) {
        let c = Controller::new(DramGeometry::tiny());
        let id = c.subarray_handle(0, 0, 0, 0).unwrap();
        (c, id)
    }

    #[test]
    fn xnor_sequence_counts_commands() {
        let (mut c, id) = ctrl();
        let cols = c.geometry().cols;
        let a = BitRow::from_fn(cols, |i| i % 2 == 0);
        let b = BitRow::from_fn(cols, |i| i % 3 == 0);
        c.write_row(id, 1, &a).unwrap();
        c.write_row(id, 2, &b).unwrap();
        c.aap_copy(id, 1, c.compute_row(0)).unwrap();
        c.aap_copy(id, 2, c.compute_row(1)).unwrap();
        let out = c.aap2_xnor(id, [c.compute_row(0), c.compute_row(1)], 5).unwrap();
        assert_eq!(out, a.xnor(&b));
        let s = c.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.aap, 2);
        assert_eq!(s.aap2, 1);
        assert!(s.serial_ns > 0.0 && s.energy_nj > 0.0);
    }

    #[test]
    fn full_adder_through_controller() {
        // Verify a complete ripple step: given rows A, B and carry-in row C,
        // carry-out = MAJ(A,B,C), sum = A^B^C, as the paper sequences it:
        // 1) TRA(A,B,C) latches the carry *and* smashes the compute rows, so
        //    the controller re-copies A,B for the sum cycle.
        let (mut c, id) = ctrl();
        let cols = c.geometry().cols;
        let a = BitRow::from_fn(cols, |i| (i / 2) % 2 == 0);
        let b = BitRow::from_fn(cols, |i| (i / 3) % 2 == 0);
        let cin = BitRow::zeros(cols);
        c.write_row(id, 1, &a).unwrap();
        c.write_row(id, 2, &b).unwrap();
        c.write_row(id, 3, &cin).unwrap();
        let (x1, x2, x3) = (c.compute_row(0), c.compute_row(1), c.compute_row(2));
        // Sum first (carry-in is latched zero after reset), then carry-out.
        c.reset_latch(id);
        c.aap_copy(id, 1, x1).unwrap();
        c.aap_copy(id, 2, x2).unwrap();
        let sum = c.aap2_sum(id, [x1, x2], 8).unwrap();
        assert_eq!(sum, a.xor(&b).xor(&cin));
        c.aap_copy(id, 1, x1).unwrap();
        c.aap_copy(id, 2, x2).unwrap();
        c.aap_copy(id, 3, x3).unwrap();
        let carry = c.aap3_carry(id, [x1, x2, x3], 9).unwrap();
        assert_eq!(carry, BitRow::maj3(&a, &b, &cin));
    }

    #[test]
    fn peek_does_not_account() {
        let (mut c, id) = ctrl();
        let cols = c.geometry().cols;
        c.write_row(id, 0, &BitRow::ones(cols)).unwrap();
        let before = *c.stats();
        let _ = c.peek_row(id, 0).unwrap();
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn dpu_ops_accumulate() {
        let (mut c, _) = ctrl();
        c.dpu_ops(5);
        assert_eq!(c.stats().dpu, 5);
    }

    #[test]
    fn trace_records_issued_commands() {
        let (mut c, id) = ctrl();
        c.enable_trace(8);
        let cols = c.geometry().cols;
        c.write_row(id, 0, &BitRow::ones(cols)).unwrap();
        c.aap_copy(id, 0, 1).unwrap();
        c.dpu_op();
        let trace = c.take_trace().unwrap();
        assert_eq!(trace.len(), 3);
        let kinds: Vec<&str> = trace.entries().map(|e| e.command.mnemonic()).collect();
        assert_eq!(kinds, vec!["WR", "AAP", "DPU"]);
        // DPU is global (no sub-array).
        assert!(trace.entries().last().unwrap().subarray.is_none());
        // Tracing disabled after take.
        assert!(c.command_trace().is_none());
    }

    #[test]
    fn take_stats_resets() {
        let (mut c, id) = ctrl();
        let cols = c.geometry().cols;
        c.write_row(id, 0, &BitRow::zeros(cols)).unwrap();
        let taken = c.take_stats();
        assert_eq!(taken.writes, 1);
        assert_eq!(c.stats().total_commands(), 0);
    }
}
