//! Physical-address translation.
//!
//! The controller's `c_addr`/`r_addr` paths (Fig. 1a) decode flat physical
//! addresses into (chip, bank, MAT, sub-array, row, column) coordinates.
//! The interleaving order decides which structures consecutive addresses
//! touch — bank-interleaved layouts let streaming accesses overlap row
//! activations across banks, which is what the AAP pipelines exploit.

use crate::address::SubarrayId;
use crate::geometry::DramGeometry;

/// Where a flat physical bit-address lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// The sub-array.
    pub subarray: SubarrayId,
    /// Row within the sub-array.
    pub row: usize,
    /// Column (bit) within the row.
    pub col: usize,
}

/// Address interleaving policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Interleave {
    /// Row-major: fill a whole sub-array before moving to the next
    /// (maximizes locality; serializes on one bank).
    #[default]
    RowMajor,
    /// Bank-interleaved: consecutive rows rotate across banks
    /// (maximizes activation overlap for streaming).
    BankInterleaved,
}

/// Translates flat bit addresses under a geometry and policy.
///
/// # Examples
///
/// ```
/// use pim_dram::address_map::{AddressMap, Interleave};
/// use pim_dram::geometry::DramGeometry;
///
/// let map = AddressMap::new(DramGeometry::tiny(), Interleave::RowMajor);
/// let loc = map.decode(0).unwrap();
/// assert_eq!(loc.row, 0);
/// assert_eq!(loc.col, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    geometry: DramGeometry,
    interleave: Interleave,
}

impl AddressMap {
    /// Creates a map for the geometry and policy.
    pub fn new(geometry: DramGeometry, interleave: Interleave) -> Self {
        AddressMap { geometry, interleave }
    }

    /// Total addressable bits.
    pub fn capacity_bits(&self) -> u128 {
        self.geometry.capacity_bits()
    }

    /// Decodes a flat bit address, or `None` beyond capacity.
    pub fn decode(&self, addr: u128) -> Option<Location> {
        if addr >= self.capacity_bits() {
            return None;
        }
        let g = &self.geometry;
        let col = (addr % g.cols as u128) as usize;
        let flat_row = (addr / g.cols as u128) as usize; // global row index
        let rows_per_subarray = g.rows;
        let (linear_subarray, row) = match self.interleave {
            Interleave::RowMajor => (flat_row / rows_per_subarray, flat_row % rows_per_subarray),
            Interleave::BankInterleaved => {
                // Rotate consecutive rows across banks: the bank index is the
                // fastest-varying coordinate after the row offset.
                let banks = g.chips * g.banks_per_chip;
                let per_bank = g.mats_per_bank * g.subarrays_per_mat;
                let bank = flat_row % banks;
                let within = flat_row / banks;
                let sub_in_bank = within / rows_per_subarray;
                let row = within % rows_per_subarray;
                (bank * per_bank + sub_in_bank, row)
            }
        };
        if linear_subarray >= g.total_subarrays() {
            return None;
        }
        Some(Location { subarray: SubarrayId::from_linear_index(g, linear_subarray), row, col })
    }

    /// Encodes a location back to its flat bit address.
    pub fn encode(&self, loc: &Location) -> u128 {
        let g = &self.geometry;
        let linear_subarray = loc.subarray.linear_index(g);
        let flat_row = match self.interleave {
            Interleave::RowMajor => linear_subarray * g.rows + loc.row,
            Interleave::BankInterleaved => {
                let banks = g.chips * g.banks_per_chip;
                let per_bank = g.mats_per_bank * g.subarrays_per_mat;
                let bank = linear_subarray / per_bank;
                let sub_in_bank = linear_subarray % per_bank;
                (sub_in_bank * g.rows + loc.row) * banks + bank
            }
        };
        flat_row as u128 * g.cols as u128 + loc.col as u128
    }

    /// Distinct banks touched by a contiguous range of `rows` whole rows
    /// starting at flat row address `start_row` — the activation-overlap
    /// opportunity of a streaming access.
    pub fn banks_touched(&self, start_row: usize, rows: usize) -> usize {
        let mut banks = std::collections::HashSet::new();
        for r in start_row..start_row + rows {
            if let Some(loc) = self.decode(r as u128 * self.geometry.cols as u128) {
                banks.insert((loc.subarray.chip, loc.subarray.bank));
            }
        }
        banks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_encode_roundtrip_both_policies() {
        let g = DramGeometry::tiny();
        for pol in [Interleave::RowMajor, Interleave::BankInterleaved] {
            let map = AddressMap::new(g, pol);
            // Sample across the whole range.
            let cap = map.capacity_bits();
            for addr in (0..cap).step_by(977) {
                let loc = map.decode(addr).unwrap_or_else(|| panic!("{pol:?}: {addr} undecodable"));
                assert_eq!(map.encode(&loc), addr, "{pol:?} addr {addr}");
            }
        }
    }

    #[test]
    fn out_of_range_is_none() {
        let map = AddressMap::new(DramGeometry::tiny(), Interleave::RowMajor);
        assert!(map.decode(map.capacity_bits()).is_none());
    }

    #[test]
    fn row_major_keeps_streams_in_one_bank() {
        let map = AddressMap::new(DramGeometry::tiny(), Interleave::RowMajor);
        // 8 consecutive rows stay inside one sub-array (32-row sub-arrays).
        assert_eq!(map.banks_touched(0, 8), 1);
    }

    #[test]
    fn bank_interleave_spreads_streams() {
        let g = DramGeometry::tiny(); // 2 banks
        let map = AddressMap::new(g, Interleave::BankInterleaved);
        assert_eq!(map.banks_touched(0, 8), 2);
    }

    #[test]
    fn consecutive_bits_share_a_row() {
        let map = AddressMap::new(DramGeometry::tiny(), Interleave::RowMajor);
        let a = map.decode(10).unwrap();
        let b = map.decode(11).unwrap();
        assert_eq!(a.row, b.row);
        assert_eq!(a.subarray, b.subarray);
        assert_eq!(b.col, a.col + 1);
    }
}
