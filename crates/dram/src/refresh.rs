//! DRAM refresh modeling.
//!
//! Processing-in-DRAM does not suspend retention requirements: every row —
//! including the compute rows — must be refreshed each tREFI window, and
//! during tRFC the banks are unavailable for AAP issue. The refresh model
//! quantifies the throughput tax and energy floor this imposes, which the
//! performance model folds into wall-clock estimates.

use crate::energy::EnergyParams;
use crate::error::{DramError, Result};
use crate::timing::TimingParams;

/// Refresh parameters of a DDR4-class device.
///
/// # Examples
///
/// ```
/// use pim_dram::refresh::RefreshParams;
///
/// let r = RefreshParams::ddr4();
/// let tax = r.availability_tax();
/// assert!(tax > 0.0 && tax < 0.1); // a few percent of all cycles
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshParams {
    /// Average refresh interval (ns) — one REF command per window.
    pub t_refi_ns: f64,
    /// Refresh cycle time (ns) — bank unavailable.
    pub t_rfc_ns: f64,
    /// Energy of one REF command across the device (nJ).
    pub ref_energy_nj: f64,
}

impl RefreshParams {
    /// Validated construction: rejects parameter sets where the refresh
    /// math silently breaks down (a device with `tRFC ≥ tREFI` spends all
    /// its time refreshing — [`RefreshParams::inflate_seconds`] would
    /// return a negative or infinite wall-clock).
    ///
    /// # Errors
    ///
    /// [`DramError::InvalidParameter`] when any timing is non-positive,
    /// the refresh energy is negative, or `t_rfc_ns >= t_refi_ns`.
    pub fn new(t_refi_ns: f64, t_rfc_ns: f64, ref_energy_nj: f64) -> Result<Self> {
        if !(t_refi_ns.is_finite() && t_refi_ns > 0.0) {
            return Err(DramError::InvalidParameter { what: "tREFI must be positive and finite" });
        }
        if !(t_rfc_ns.is_finite() && t_rfc_ns > 0.0) {
            return Err(DramError::InvalidParameter { what: "tRFC must be positive and finite" });
        }
        if t_rfc_ns >= t_refi_ns {
            return Err(DramError::InvalidParameter {
                what: "tRFC must be below tREFI (availability tax would reach 100%)",
            });
        }
        if !(ref_energy_nj.is_finite() && ref_energy_nj >= 0.0) {
            return Err(DramError::InvalidParameter {
                what: "refresh energy must be non-negative and finite",
            });
        }
        Ok(RefreshParams { t_refi_ns, t_rfc_ns, ref_energy_nj })
    }

    /// DDR4 at normal temperature: tREFI = 7.8 µs, tRFC = 350 ns (8 Gb).
    pub fn ddr4() -> Self {
        RefreshParams::new(7_800.0, 350.0, 190.0).expect("DDR4 defaults are valid")
    }

    /// DDR4 in extended-temperature mode (tREFI halves — refresh costs
    /// double, relevant for a compute-heavy DRAM running warm).
    pub fn ddr4_extended_temperature() -> Self {
        RefreshParams::new(3_900.0, 350.0, 190.0).expect("DDR4 defaults are valid")
    }

    /// Fraction of time the array is blocked by refresh
    /// (`tRFC / tREFI`).
    pub fn availability_tax(&self) -> f64 {
        self.t_rfc_ns / self.t_refi_ns
    }

    /// Inflates a wall-clock estimate by the refresh stall share.
    ///
    /// # Panics
    ///
    /// Panics when the parameters are degenerate (`tRFC ≥ tREFI`) — such a
    /// set cannot pass [`RefreshParams::new`], but the fields are public,
    /// so a hand-built struct is caught here instead of silently returning
    /// a negative or infinite wall-clock.
    pub fn inflate_seconds(&self, seconds: f64) -> f64 {
        let tax = self.availability_tax();
        assert!(
            tax < 1.0,
            "degenerate refresh parameters: tRFC ({}) >= tREFI ({})",
            self.t_rfc_ns,
            self.t_refi_ns
        );
        seconds / (1.0 - tax)
    }

    /// Background refresh power of the device (W): one REF per tREFI.
    pub fn refresh_power_w(&self) -> f64 {
        self.ref_energy_nj / self.t_refi_ns
    }

    /// Refresh commands issued over `seconds` of operation.
    pub fn refresh_commands(&self, seconds: f64) -> u64 {
        (seconds * 1e9 / self.t_refi_ns) as u64
    }

    /// Total refresh energy over `seconds` (J).
    pub fn refresh_energy_j(&self, seconds: f64) -> f64 {
        self.refresh_commands(seconds) as f64 * self.ref_energy_nj * 1e-9
    }
}

impl Default for RefreshParams {
    fn default() -> Self {
        RefreshParams::ddr4()
    }
}

/// Sanity coupling with the main parameter sets: refresh power should be a
/// modest addition to the background power already modeled per bank.
pub fn refresh_fraction_of_background(
    refresh: &RefreshParams,
    energy: &EnergyParams,
    banks: usize,
) -> f64 {
    let background_w = banks as f64 * energy.background_mw_per_bank / 1000.0;
    refresh.refresh_power_w() / background_w
}

/// Effective AAP issue rate (commands/s) after the refresh tax.
pub fn effective_aap_rate(timing: &TimingParams, refresh: &RefreshParams) -> f64 {
    (1.0 - refresh.availability_tax()) / (timing.aap_ns() * 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr4_tax_is_about_4_5_percent() {
        let r = RefreshParams::ddr4();
        assert!((r.availability_tax() - 0.0449).abs() < 0.001);
    }

    #[test]
    fn extended_temperature_doubles_the_tax() {
        let n = RefreshParams::ddr4();
        let x = RefreshParams::ddr4_extended_temperature();
        assert!((x.availability_tax() / n.availability_tax() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn inflation_is_consistent_with_tax() {
        let r = RefreshParams::ddr4();
        let inflated = r.inflate_seconds(100.0);
        assert!(inflated > 100.0);
        // Work fraction × inflated time = original time.
        assert!((inflated * (1.0 - r.availability_tax()) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_parameters_rejected_at_construction() {
        // tRFC >= tREFI: the device would spend >= 100% of its time
        // refreshing; previously this silently produced a negative
        // wall-clock from inflate_seconds.
        assert!(matches!(
            RefreshParams::new(350.0, 350.0, 190.0),
            Err(DramError::InvalidParameter { .. })
        ));
        assert!(matches!(
            RefreshParams::new(100.0, 350.0, 190.0),
            Err(DramError::InvalidParameter { .. })
        ));
        assert!(matches!(
            RefreshParams::new(-7800.0, 350.0, 190.0),
            Err(DramError::InvalidParameter { .. })
        ));
        assert!(matches!(
            RefreshParams::new(7800.0, 0.0, 190.0),
            Err(DramError::InvalidParameter { .. })
        ));
        assert!(matches!(
            RefreshParams::new(7800.0, 350.0, f64::NAN),
            Err(DramError::InvalidParameter { .. })
        ));
        assert!(RefreshParams::new(7800.0, 350.0, 190.0).is_ok());
    }

    #[test]
    #[should_panic(expected = "degenerate refresh parameters")]
    fn handbuilt_degenerate_struct_cannot_inflate_silently() {
        // Public fields allow bypassing `new`; the inflation guard still
        // refuses to return a negative wall-clock.
        let r = RefreshParams { t_refi_ns: 100.0, t_rfc_ns: 350.0, ref_energy_nj: 190.0 };
        let _ = r.inflate_seconds(10.0);
    }

    #[test]
    fn refresh_energy_scales_linearly() {
        let r = RefreshParams::ddr4();
        let e1 = r.refresh_energy_j(10.0);
        let e2 = r.refresh_energy_j(20.0);
        assert!((e2 / e1 - 2.0).abs() < 0.01);
    }

    #[test]
    fn effective_rate_below_raw_rate() {
        let t = TimingParams::ddr4_2133();
        let r = RefreshParams::ddr4();
        let raw = 1.0 / (t.aap_ns() * 1e-9);
        assert!(effective_aap_rate(&t, &r) < raw);
    }

    #[test]
    fn refresh_power_is_fraction_of_background() {
        let f =
            refresh_fraction_of_background(&RefreshParams::ddr4(), &EnergyParams::ddr4_45nm(), 256);
        assert!(f > 0.0 && f < 0.05, "refresh share {f}");
    }
}
