//! Integer-exact latency/energy accounting.
//!
//! Per-sub-array execution contexts ([`crate::context::SubarrayContext`])
//! accumulate their command traffic locally and are merged back into the
//! [`crate::controller::Controller`] when a parallel dispatch completes.
//! For the merged totals to be *byte-identical* regardless of merge order,
//! the ledger accounts in integers — picoseconds and femtojoules — rather
//! than accumulating `f64` latencies (whose addition is not associative).
//! The floating-point [`CommandStats`] view the rest of the stack consumes
//! is derived from the integer totals at read time, so any interleaving of
//! the same command multiset produces the same `CommandStats`, bit for bit.

use crate::command::DramCommand;
use crate::energy::EnergyParams;
use crate::stats::CommandStats;
use crate::timing::TimingParams;

/// The six accounting classes of [`DramCommand`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandClass {
    /// Row read to the host (`RD`).
    Read,
    /// Row write from the host (`WR`).
    Write,
    /// Type-1 AAP copy (`AAP`).
    Aap,
    /// Type-2 AAP, two-row activation (`AAP2`).
    Aap2,
    /// Type-3 AAP, triple-row activation (`AAP3`).
    Aap3,
    /// DPU scalar operation (`DPU`).
    Dpu,
}

/// All classes, in mnemonic order.
pub const COMMAND_CLASSES: [CommandClass; 6] = [
    CommandClass::Read,
    CommandClass::Write,
    CommandClass::Aap,
    CommandClass::Aap2,
    CommandClass::Aap3,
    CommandClass::Dpu,
];

impl CommandClass {
    /// The class of a concrete command.
    pub fn of(cmd: &DramCommand) -> Self {
        match cmd {
            DramCommand::Read { .. } => CommandClass::Read,
            DramCommand::Write { .. } => CommandClass::Write,
            DramCommand::Aap { .. } => CommandClass::Aap,
            DramCommand::Aap2 { .. } => CommandClass::Aap2,
            DramCommand::Aap3 { .. } => CommandClass::Aap3,
            DramCommand::DpuOp => CommandClass::Dpu,
        }
    }

    /// Parses a [`DramCommand::mnemonic`] string.
    pub fn from_mnemonic(mnemonic: &str) -> Option<Self> {
        Some(match mnemonic {
            "RD" => CommandClass::Read,
            "WR" => CommandClass::Write,
            "AAP" => CommandClass::Aap,
            "AAP2" => CommandClass::Aap2,
            "AAP3" => CommandClass::Aap3,
            "DPU" => CommandClass::Dpu,
            _ => return None,
        })
    }

    /// The statistics mnemonic of this class.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            CommandClass::Read => "RD",
            CommandClass::Write => "WR",
            CommandClass::Aap => "AAP",
            CommandClass::Aap2 => "AAP2",
            CommandClass::Aap3 => "AAP3",
            CommandClass::Dpu => "DPU",
        }
    }

    fn index(self) -> usize {
        match self {
            CommandClass::Read => 0,
            CommandClass::Write => 1,
            CommandClass::Aap => 2,
            CommandClass::Aap2 => 3,
            CommandClass::Aap3 => 4,
            CommandClass::Dpu => 5,
        }
    }
}

/// Integer unit cost of one command of a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct UnitCost {
    /// Latency in picoseconds.
    pub time_ps: u64,
    /// Energy in femtojoules.
    pub energy_fj: u64,
}

/// Pre-quantized per-class unit costs for a fixed (timing, energy, row
/// width) configuration. Every component of one controller shares one
/// `CommandCosts`, so context-local and controller-level accounting use
/// identical arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommandCosts {
    units: [UnitCost; 6],
}

impl CommandCosts {
    /// Quantizes the analog cost model: latencies round to the nearest
    /// picosecond, energies to the nearest femtojoule (both far below the
    /// model's own resolution).
    pub fn new(timing: &TimingParams, energy: &EnergyParams, cols: usize) -> Self {
        let mut units = [UnitCost::default(); 6];
        for class in COMMAND_CLASSES {
            let probe = probe_command(class);
            units[class.index()] = UnitCost {
                time_ps: (probe.latency_ns(timing, cols) * 1e3).round() as u64,
                energy_fj: (probe.energy_nj(energy, cols) * 1e6).round() as u64,
            };
        }
        CommandCosts { units }
    }

    /// The unit cost of one command of `class`.
    pub fn unit(&self, class: CommandClass) -> UnitCost {
        self.units[class.index()]
    }
}

/// A representative command of a class (costs depend only on the class).
fn probe_command(class: CommandClass) -> DramCommand {
    use crate::address::RowAddr;
    use crate::sense_amp::SaMode;
    match class {
        CommandClass::Read => DramCommand::Read { src: RowAddr(0) },
        CommandClass::Write => DramCommand::Write { dst: RowAddr(0) },
        CommandClass::Aap => DramCommand::Aap { src: RowAddr(0), dst: RowAddr(0) },
        CommandClass::Aap2 => DramCommand::Aap2 {
            srcs: [RowAddr(0), RowAddr(1)],
            dst: RowAddr(0),
            mode: SaMode::Xnor,
        },
        CommandClass::Aap3 => DramCommand::Aap3 {
            srcs: [RowAddr(0), RowAddr(1), RowAddr(2)],
            dst: RowAddr(0),
            mode: SaMode::Carry,
        },
        CommandClass::Dpu => DramCommand::DpuOp,
    }
}

/// Per-class integer totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ClassTotals {
    /// Commands of this class.
    pub count: u64,
    /// Accumulated latency (ps).
    pub time_ps: u64,
    /// Accumulated energy (fJ).
    pub energy_fj: u64,
}

/// Order-independent latency/energy account of a command multiset.
///
/// `merge` is exactly commutative and associative (integer addition), and
/// [`EnergyLedger::to_stats`] derives the floating-point view from the
/// totals, so any partition of the same work into ledgers merges back to
/// the same [`CommandStats`].
///
/// # Examples
///
/// ```
/// use pim_dram::ledger::{CommandClass, CommandCosts, EnergyLedger};
/// use pim_dram::{energy::EnergyParams, timing::TimingParams};
///
/// let costs = CommandCosts::new(&TimingParams::default(), &EnergyParams::default(), 256);
/// let mut a = EnergyLedger::default();
/// let mut b = EnergyLedger::default();
/// a.charge(CommandClass::Aap, &costs);
/// b.charge(CommandClass::Aap2, &costs);
///
/// let mut ab = a;
/// ab.merge(&b);
/// let mut ba = b;
/// ba.merge(&a);
/// assert_eq!(ab, ba);
/// assert_eq!(ab.to_stats(), ba.to_stats());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EnergyLedger {
    classes: [ClassTotals; 6],
}

impl EnergyLedger {
    /// Charges one command of `class` at `costs`.
    pub fn charge(&mut self, class: CommandClass, costs: &CommandCosts) {
        self.charge_many(class, costs, 1);
    }

    /// Charges `count` commands of `class` at `costs`.
    pub fn charge_many(&mut self, class: CommandClass, costs: &CommandCosts, count: u64) {
        let unit = costs.unit(class);
        let totals = &mut self.classes[class.index()];
        totals.count += count;
        totals.time_ps += unit.time_ps * count;
        totals.energy_fj += unit.energy_fj * count;
    }

    /// Totals for one class.
    pub fn class(&self, class: CommandClass) -> ClassTotals {
        self.classes[class.index()]
    }

    /// Overwrites one class's totals — the restore counterpart of
    /// [`EnergyLedger::class`], used when importing a checkpointed ledger.
    pub fn set_class(&mut self, class: CommandClass, totals: ClassTotals) {
        self.classes[class.index()] = totals;
    }

    /// Adds `other`'s totals into `self`.
    pub fn merge(&mut self, other: &EnergyLedger) {
        for (mine, theirs) in self.classes.iter_mut().zip(other.classes.iter()) {
            mine.count += theirs.count;
            mine.time_ps += theirs.time_ps;
            mine.energy_fj += theirs.energy_fj;
        }
    }

    /// The delta accumulated since `baseline` (a prior snapshot of this
    /// ledger).
    ///
    /// # Panics
    ///
    /// Panics (integer underflow, debug) or wraps (release) if `baseline`
    /// is not an earlier snapshot; callers hold that invariant.
    pub fn since(&self, baseline: &EnergyLedger) -> EnergyLedger {
        let mut out = *self;
        for (mine, base) in out.classes.iter_mut().zip(baseline.classes.iter()) {
            mine.count -= base.count;
            mine.time_ps -= base.time_ps;
            mine.energy_fj -= base.energy_fj;
        }
        out
    }

    /// Total commands across all classes.
    pub fn total_commands(&self) -> u64 {
        self.classes.iter().map(|c| c.count).sum()
    }

    /// Total serial latency (ps).
    pub fn total_time_ps(&self) -> u64 {
        self.classes.iter().map(|c| c.time_ps).sum()
    }

    /// Total energy (fJ).
    pub fn total_energy_fj(&self) -> u64 {
        self.classes.iter().map(|c| c.energy_fj).sum()
    }

    /// Total energy in picojoules (truncating femtojoule view — the unit
    /// the observability snapshot reports).
    pub fn total_energy_pj(&self) -> u64 {
        self.total_energy_fj() / 1_000
    }

    /// True if nothing has been charged.
    pub fn is_empty(&self) -> bool {
        self.total_commands() == 0
    }

    /// Derives the floating-point statistics view. Equal ledgers derive
    /// bit-identical stats.
    pub fn to_stats(&self) -> CommandStats {
        let mut s = CommandStats {
            reads: self.class(CommandClass::Read).count,
            writes: self.class(CommandClass::Write).count,
            aap: self.class(CommandClass::Aap).count,
            aap2: self.class(CommandClass::Aap2).count,
            aap3: self.class(CommandClass::Aap3).count,
            dpu: self.class(CommandClass::Dpu).count,
            ..CommandStats::default()
        };
        s.serial_ns = self.total_time_ps() as f64 / 1e3;
        s.energy_nj = self.total_energy_fj() as f64 / 1e6;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> CommandCosts {
        CommandCosts::new(&TimingParams::default(), &EnergyParams::default(), 256)
    }

    #[test]
    fn classes_roundtrip_through_mnemonics() {
        for class in COMMAND_CLASSES {
            assert_eq!(CommandClass::from_mnemonic(class.mnemonic()), Some(class));
            assert_eq!(CommandClass::of(&probe_command(class)), class);
        }
        assert_eq!(CommandClass::from_mnemonic("NOP"), None);
    }

    #[test]
    fn unit_costs_quantize_the_analog_model() {
        let t = TimingParams::default();
        let c = costs();
        // AAP window: tRAS + tRP = 47.06 ns → 47060 ps.
        assert_eq!(c.unit(CommandClass::Aap).time_ps, (t.aap_ns() * 1e3).round() as u64);
        // DPU at the command clock: 0.937 ns → 937 ps.
        assert_eq!(c.unit(CommandClass::Dpu).time_ps, 937);
        // AAP2/AAP3 cost strictly more energy than AAP.
        assert!(c.unit(CommandClass::Aap).energy_fj < c.unit(CommandClass::Aap2).energy_fj);
        assert!(c.unit(CommandClass::Aap2).energy_fj < c.unit(CommandClass::Aap3).energy_fj);
    }

    #[test]
    fn charge_many_equals_repeated_charge() {
        let c = costs();
        let mut one = EnergyLedger::default();
        for _ in 0..13 {
            one.charge(CommandClass::Aap2, &c);
        }
        let mut many = EnergyLedger::default();
        many.charge_many(CommandClass::Aap2, &c, 13);
        assert_eq!(one, many);
    }

    #[test]
    fn merge_is_order_independent_and_stats_match() {
        let c = costs();
        let mut a = EnergyLedger::default();
        a.charge_many(CommandClass::Read, &c, 7);
        a.charge_many(CommandClass::Aap, &c, 3);
        let mut b = EnergyLedger::default();
        b.charge_many(CommandClass::Write, &c, 2);
        b.charge_many(CommandClass::Dpu, &c, 11);

        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.to_stats(), ba.to_stats());
        assert_eq!(ab.total_commands(), 23);
    }

    #[test]
    fn since_inverts_merge() {
        let c = costs();
        let mut base = EnergyLedger::default();
        base.charge_many(CommandClass::Aap3, &c, 5);
        let mut grown = base;
        grown.charge_many(CommandClass::Aap, &c, 9);
        let delta = grown.since(&base);
        assert_eq!(delta.class(CommandClass::Aap).count, 9);
        assert_eq!(delta.class(CommandClass::Aap3).count, 0);
        let mut rebuilt = base;
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, grown);
    }

    #[test]
    fn set_class_imports_checkpointed_totals() {
        let c = costs();
        let mut src = EnergyLedger::default();
        src.charge_many(CommandClass::Aap, &c, 5);
        src.charge_many(CommandClass::Dpu, &c, 2);
        let mut restored = EnergyLedger::default();
        for class in COMMAND_CLASSES {
            restored.set_class(class, src.class(class));
        }
        assert_eq!(restored, src);
        assert_eq!(restored.to_stats(), src.to_stats());
    }

    #[test]
    fn stats_view_matches_counts() {
        let c = costs();
        let mut l = EnergyLedger::default();
        l.charge_many(CommandClass::Write, &c, 4);
        l.charge(CommandClass::Aap2, &c);
        let s = l.to_stats();
        assert_eq!(s.writes, 4);
        assert_eq!(s.aap2, 1);
        assert_eq!(s.total_commands(), 5);
        assert!(s.serial_ns > 0.0 && s.energy_nj > 0.0);
        assert!(EnergyLedger::default().to_stats() == CommandStats::default());
    }
}
