//! Per-backend runtime profiles: activation semantics plus command costs.
//!
//! The retargetable lowering layer in `pim-assembler` decides *which*
//! commands a kernel issues per substrate; this module decides what those
//! commands *cost* and how activations behave physically:
//!
//! * **PIM-Assembler** and **Ambit-TRA** share the commodity-DRAM
//!   substrate (DDR4 timings, 45 nm DRAM energies, destructive
//!   charge-sharing activation). They differ purely in command mix — the
//!   faithful model of Ambit, which is built from unmodified DRAM cells.
//! * **PANDA-MRAM** models SOT-MRAM sense-amp bulk logic: reading a
//!   magnetic tunnel junction is non-destructive, word lines switch
//!   faster than DRAM row restore, there is no refresh, and per-event
//!   energies follow the MTJ read/write asymmetry.
//!
//! A profile is consumed by
//! [`crate::controller::Controller::with_profile`], which derives the
//! integer-exact [`crate::ledger::CommandCosts`] from the profile's
//! timing/energy tables and threads the activation model into every
//! sub-array context.

use crate::energy::EnergyParams;
use crate::timing::TimingParams;

/// What a multi-row activation does to the activated source rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ActivationModel {
    /// DRAM charge sharing: the sense amplifier drives the resolved value
    /// back into every activated cell, destroying the source rows (the
    /// reason operands are RowCloned into compute rows first).
    #[default]
    DestructiveCharge,
    /// MRAM resistive sensing: reading the activated cells leaves their
    /// magnetization untouched; only the destination row is written, and
    /// data rows may appear in activation sets directly.
    NondestructiveSense,
}

/// One backend's runtime profile: activation semantics + command costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendProfile {
    /// Canonical backend name (matches the compiler-side backend name).
    pub name: &'static str,
    /// Physical activation semantics of multi-row activations.
    pub activation: ActivationModel,
    /// Command timing table.
    pub timing: TimingParams,
    /// Command energy table.
    pub energy: EnergyParams,
}

impl BackendProfile {
    /// The paper's platform: DDR4-2133, 45 nm DRAM, destructive
    /// activation. [`crate::controller::Controller::new`] uses exactly
    /// these parameters, so the profile changes nothing for existing
    /// callers.
    pub fn pim_assembler() -> Self {
        BackendProfile {
            name: "pim-assembler",
            activation: ActivationModel::DestructiveCharge,
            timing: TimingParams::ddr4_2133(),
            energy: EnergyParams::ddr4_45nm(),
        }
    }

    /// Ambit-style TRA on commodity DRAM: same substrate costs as the
    /// PIM-Assembler profile — the platforms differ in *command mix*
    /// (MAJ/NOT gate sequences vs single-cycle SA modes), not in
    /// per-command cost.
    pub fn ambit_tra() -> Self {
        BackendProfile { name: "ambit-tra", ..BackendProfile::pim_assembler() }
    }

    /// PANDA-style SOT-MRAM: non-destructive sensing with the MRAM
    /// timing/energy tables ([`TimingParams::sot_mram`],
    /// [`EnergyParams::sot_mram_45nm`]).
    pub fn panda_mram() -> Self {
        BackendProfile {
            name: "panda-mram",
            activation: ActivationModel::NondestructiveSense,
            timing: TimingParams::sot_mram(),
            energy: EnergyParams::sot_mram_45nm(),
        }
    }
}

impl Default for BackendProfile {
    fn default() -> Self {
        BackendProfile::pim_assembler()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pim_assembler_profile_matches_the_historical_defaults() {
        let p = BackendProfile::pim_assembler();
        assert_eq!(p.timing, TimingParams::default());
        assert_eq!(p.energy, EnergyParams::default());
        assert_eq!(p.activation, ActivationModel::DestructiveCharge);
        assert_eq!(BackendProfile::default(), p);
    }

    #[test]
    fn ambit_shares_the_dram_substrate() {
        let a = BackendProfile::ambit_tra();
        let p = BackendProfile::pim_assembler();
        assert_eq!(a.timing, p.timing);
        assert_eq!(a.energy, p.energy);
        assert_eq!(a.activation, ActivationModel::DestructiveCharge);
        assert_ne!(a.name, p.name);
    }

    #[test]
    fn mram_profile_is_faster_per_activation_and_refresh_free() {
        let m = BackendProfile::panda_mram();
        let p = BackendProfile::pim_assembler();
        assert_eq!(m.activation, ActivationModel::NondestructiveSense);
        assert!(m.timing.aap_ns() < p.timing.aap_ns());
        assert!(m.energy.background_mw_per_bank < p.energy.background_mw_per_bank);
    }
}
