//! Digital model of the reconfigurable sense amplifier (Fig. 2).
//!
//! The paper's SA augments the regular cross-coupled pair with two inverters
//! of shifted voltage-transfer characteristics (VTC), one AND gate with an
//! inverted input, one XOR gate, a D-latch, and a 4:1 MUX, steered by five
//! enable signals `(Enm, Enx, Enmux, Enc1, Enc2)`.
//!
//! During a two-row activation the bit-line settles to `Vi = n·Vdd / C`
//! where `n` is the number of activated cells storing logic 1 and `C = 2`.
//! The **low-Vs** inverter switches around `¼·Vdd`, so its output is the
//! NOR2 of the operands; the **high-Vs** inverter switches around `¾·Vdd`,
//! giving NAND2; `XOR2 = NAND2 AND (NOT NOR2)` through the add-on AND gate,
//! and the MUX routes `XOR2` / `XNOR2` onto BL / BL̄. A triple-row
//! activation senses the 3-input majority (Ambit TRA) for the carry, which
//! the D-latch holds so the add-on XOR can form the sum in the next cycle.
//!
//! This module models that behaviour *digitally* (exact logic); the analog
//! margins and their sensitivity to process variation are modeled in the
//! `pim-circuits` crate.

use crate::bitrow::BitRow;

/// Operating mode of the reconfigurable sense amplifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SaMode {
    /// Normal DRAM read/write sensing (MUX deactivated).
    Memory,
    /// Two-row activation, low-Vs inverter output: NOR2.
    Nor,
    /// Two-row activation, high-Vs inverter output: NAND2.
    Nand,
    /// Two-row activation, add-on AND gate output: XOR2.
    Xor,
    /// Two-row activation, complement on BL̄: XNOR2 (single cycle —
    /// the paper's comparison primitive).
    Xnor,
    /// Triple-row activation: majority (carry), latched.
    Carry,
    /// Sum through the add-on XOR of the two operands and the latched carry.
    CarrySum,
}

/// The five SA enable signals `(Enm, Enx, Enmux, Enc1, Enc2)` of Fig. 2a.
///
/// # Examples
///
/// ```
/// use pim_dram::sense_amp::{EnableSignals, SaMode};
///
/// // The paper quotes "01110" as the enable set for XNOR2.
/// assert_eq!(EnableSignals::for_mode(SaMode::Xnor).as_bits(), [false, true, true, true, false]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EnableSignals {
    /// Enables the normal-Vs back-to-back inverter pair (memory sensing).
    pub en_m: bool,
    /// Enables the shifted-VTC inverter branch (in-memory logic).
    pub en_x: bool,
    /// Enables the 4:1 output MUX.
    pub en_mux: bool,
    /// MUX selector bit 1.
    pub en_c1: bool,
    /// MUX selector bit 2.
    pub en_c2: bool,
}

impl EnableSignals {
    /// Enable set for a given SA mode, per the control table of Fig. 2a.
    pub fn for_mode(mode: SaMode) -> Self {
        match mode {
            // W/R: Enm=1, Enx=1 (both sensing paths ready), MUX off.
            SaMode::Memory => {
                EnableSignals { en_m: true, en_x: true, en_mux: false, en_c1: false, en_c2: false }
            }
            // XNOR2: the paper's "01110".
            SaMode::Xnor => {
                EnableSignals { en_m: false, en_x: true, en_mux: true, en_c1: true, en_c2: false }
            }
            SaMode::Xor => {
                EnableSignals { en_m: false, en_x: true, en_mux: true, en_c1: false, en_c2: true }
            }
            SaMode::Nor => {
                EnableSignals { en_m: false, en_x: true, en_mux: true, en_c1: false, en_c2: false }
            }
            SaMode::Nand => {
                EnableSignals { en_m: false, en_x: true, en_mux: true, en_c1: true, en_c2: true }
            }
            // Carry: normal majority sensing with the latch armed.
            SaMode::Carry => {
                EnableSignals { en_m: true, en_x: true, en_mux: true, en_c1: true, en_c2: false }
            }
            // Sum: latch drives the add-on XOR onto the BL.
            SaMode::CarrySum => {
                EnableSignals { en_m: true, en_x: true, en_mux: true, en_c1: false, en_c2: false }
            }
        }
    }

    /// The signals as the `[Enm, Enx, Enmux, Enc1, Enc2]` bit pattern.
    pub fn as_bits(&self) -> [bool; 5] {
        [self.en_m, self.en_x, self.en_mux, self.en_c1, self.en_c2]
    }
}

/// Row-wide digital sense-amplifier model.
///
/// Holds the per-column D-latch state used by the addition datapath. All
/// logic functions operate on whole rows ([`BitRow`]) because the SA is
/// replicated per bit-line.
///
/// # Examples
///
/// ```
/// use pim_dram::{bitrow::BitRow, sense_amp::SenseAmpArray};
///
/// let mut sa = SenseAmpArray::new(4);
/// let a = BitRow::from_bits([false, false, true, true]);
/// let b = BitRow::from_bits([false, true, false, true]);
/// assert_eq!(sa.two_row_xnor(&a, &b).to_bit_vec(), vec![true, false, false, true]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SenseAmpArray {
    latch: BitRow,
}

impl SenseAmpArray {
    /// Creates a SA array for a sub-array of `cols` bit-lines, latch cleared.
    pub fn new(cols: usize) -> Self {
        SenseAmpArray { latch: BitRow::zeros(cols) }
    }

    /// Current latch content (the carry row of an in-flight addition).
    pub fn latch(&self) -> &BitRow {
        &self.latch
    }

    /// Clears the latch (issued by the controller before a new addition).
    pub fn reset_latch(&mut self) {
        self.latch = BitRow::zeros(self.latch.len());
    }

    /// Two-row activation sensed through the low-Vs inverter: NOR2.
    pub fn two_row_nor(&self, a: &BitRow, b: &BitRow) -> BitRow {
        a.or(b).not()
    }

    /// Two-row activation sensed through the high-Vs inverter: NAND2.
    pub fn two_row_nand(&self, a: &BitRow, b: &BitRow) -> BitRow {
        a.and(b).not()
    }

    /// Two-row activation through the add-on AND gate: XOR2
    /// (`NAND2 AND NOT(NOR2)` per Fig. 2a).
    pub fn two_row_xor(&self, a: &BitRow, b: &BitRow) -> BitRow {
        self.two_row_nand(a, b).and(&self.two_row_nor(a, b).not())
    }

    /// Two-row activation, complement routed to BL̄: XNOR2 in one cycle.
    pub fn two_row_xnor(&mut self, a: &BitRow, b: &BitRow) -> BitRow {
        self.two_row_xor(a, b).not()
    }

    /// Triple-row activation (Ambit TRA): 3-input majority, latched as the
    /// carry for a following [`SenseAmpArray::sum_from_latch`].
    pub fn triple_row_carry(&mut self, a: &BitRow, b: &BitRow, c: &BitRow) -> BitRow {
        let carry = BitRow::maj3(a, b, c);
        self.latch = carry.clone();
        carry
    }

    /// Sum output: XOR of the two operands and the latched carry from the
    /// previous cycle (the add-on XOR gate with `Latch_En` asserted).
    pub fn sum_from_latch(&self, a: &BitRow, b: &BitRow) -> BitRow {
        a.xor(b).xor(&self.latch)
    }

    /// In-place [`SenseAmpArray::two_row_nor`]: senses into `out` without
    /// allocating.
    pub fn two_row_nor_into(&self, a: &BitRow, b: &BitRow, out: &mut BitRow) {
        out.nor_into(a, b);
    }

    /// In-place [`SenseAmpArray::two_row_nand`].
    pub fn two_row_nand_into(&self, a: &BitRow, b: &BitRow, out: &mut BitRow) {
        out.nand_into(a, b);
    }

    /// In-place [`SenseAmpArray::two_row_xor`] (`NAND2 AND NOT(NOR2)`
    /// collapses to one XOR pass over the backing words).
    pub fn two_row_xor_into(&self, a: &BitRow, b: &BitRow, out: &mut BitRow) {
        out.xor_into(a, b);
    }

    /// In-place [`SenseAmpArray::two_row_xnor`].
    pub fn two_row_xnor_into(&self, a: &BitRow, b: &BitRow, out: &mut BitRow) {
        out.xnor_into(a, b);
    }

    /// In-place [`SenseAmpArray::triple_row_carry`]: senses the majority
    /// into `out` and latches it, without allocating.
    pub fn triple_row_carry_into(&mut self, a: &BitRow, b: &BitRow, c: &BitRow, out: &mut BitRow) {
        out.maj3_into(a, b, c);
        self.latch.copy_from(out);
    }

    /// In-place [`SenseAmpArray::sum_from_latch`].
    pub fn sum_from_latch_into(&self, a: &BitRow, b: &BitRow, out: &mut BitRow) {
        out.xor3_into(a, b, &self.latch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows4() -> (BitRow, BitRow) {
        (
            BitRow::from_bits([false, false, true, true]),
            BitRow::from_bits([false, true, false, true]),
        )
    }

    #[test]
    fn nor_nand_xor_truth_tables_match_fig2b() {
        let sa = SenseAmpArray::new(4);
        let (a, b) = rows4();
        // Fig. 2b: Di Dj -> out1 (NOR via low-Vs), out2 (NAND via high-Vs).
        assert_eq!(sa.two_row_nor(&a, &b).to_bit_vec(), vec![true, false, false, false]);
        assert_eq!(sa.two_row_nand(&a, &b).to_bit_vec(), vec![true, true, true, false]);
        assert_eq!(sa.two_row_xor(&a, &b).to_bit_vec(), vec![false, true, true, false]);
    }

    #[test]
    fn xnor_is_xor_complement() {
        let mut sa = SenseAmpArray::new(4);
        let (a, b) = rows4();
        assert_eq!(sa.two_row_xnor(&a, &b), sa.two_row_xor(&a, &b).not());
    }

    #[test]
    fn full_adder_bit_via_carry_then_sum() {
        // One full-adder step: carry = MAJ(a, b, cin); sum = a ^ b ^ cin.
        let mut sa = SenseAmpArray::new(8);
        let a = BitRow::from_bits([false, false, false, false, true, true, true, true]);
        let b = BitRow::from_bits([false, false, true, true, false, false, true, true]);
        let cin = BitRow::from_bits([false, true, false, true, false, true, false, true]);
        // With the incoming carry latched (as the controller sequences it),
        // the add-on XOR produces sum = a ^ b ^ cin …
        sa.triple_row_carry(&cin, &cin, &cin); // latch := cin
        assert_eq!(sa.sum_from_latch(&a, &b), a.xor(&b).xor(&cin));
        // … and the TRA produces the carry-out MAJ(a, b, cin).
        sa.triple_row_carry(&a, &b, &cin);
        assert_eq!(
            sa.latch().to_bit_vec(),
            vec![false, false, false, true, false, true, true, true]
        );
    }

    #[test]
    fn in_place_sensing_matches_allocating_sensing() {
        let mut sa = SenseAmpArray::new(4);
        let mut sa_into = SenseAmpArray::new(4);
        let (a, b) = rows4();
        let c = BitRow::from_bits([true, false, false, true]);
        let mut out = BitRow::zeros(4);
        sa_into.two_row_nor_into(&a, &b, &mut out);
        assert_eq!(out, sa.two_row_nor(&a, &b));
        sa_into.two_row_nand_into(&a, &b, &mut out);
        assert_eq!(out, sa.two_row_nand(&a, &b));
        sa_into.two_row_xor_into(&a, &b, &mut out);
        assert_eq!(out, sa.two_row_xor(&a, &b));
        sa_into.two_row_xnor_into(&a, &b, &mut out);
        assert_eq!(out, sa.two_row_xnor(&a, &b));
        sa_into.triple_row_carry_into(&a, &b, &c, &mut out);
        assert_eq!(out, sa.triple_row_carry(&a, &b, &c));
        assert_eq!(sa_into.latch(), sa.latch());
        sa_into.sum_from_latch_into(&a, &b, &mut out);
        assert_eq!(out, sa.sum_from_latch(&a, &b));
    }

    #[test]
    fn latch_reset() {
        let mut sa = SenseAmpArray::new(4);
        let (a, b) = rows4();
        sa.triple_row_carry(&a, &b, &a);
        assert!(!sa.latch().all_zeros());
        sa.reset_latch();
        assert!(sa.latch().all_zeros());
    }

    #[test]
    fn enable_signals_match_paper_encodings() {
        // "01110 for XNOR2" (§II-A).
        assert_eq!(
            EnableSignals::for_mode(SaMode::Xnor).as_bits(),
            [false, true, true, true, false]
        );
        // Memory W/R keeps the MUX off so BL is driven by the normal pair.
        let m = EnableSignals::for_mode(SaMode::Memory);
        assert!(m.en_m && !m.en_mux);
        // All seven modes produce distinct enable sets or reuse is explicit.
        let modes = [
            SaMode::Memory,
            SaMode::Nor,
            SaMode::Nand,
            SaMode::Xor,
            SaMode::Xnor,
            SaMode::Carry,
            SaMode::CarrySum,
        ];
        for m in modes {
            // for_mode is total.
            let _ = EnableSignals::for_mode(m);
        }
    }
}
