//! Row decoders: the regular decoder for the 1016 data rows and the
//! modified row decoder (MRD) for the 8 compute rows.
//!
//! The MRD of Fig. 2a is a 3:8 decoder whose word-line drivers are extended
//! by two transistors so that *two or three* compute rows can be raised in
//! the same ACTIVATE — the paper's two-row activation (XNOR) and Ambit-style
//! TRA (carry). Only the 8 compute rows `x1..x8` are wired to the MRD; data
//! rows can only be activated one at a time.

use crate::address::RowAddr;
use crate::error::{DramError, Result};
use crate::geometry::DramGeometry;

/// Validates single-row activations against the sub-array row space.
///
/// # Examples
///
/// ```
/// use pim_dram::{decoder::RowDecoder, geometry::DramGeometry, address::RowAddr};
///
/// let rd = RowDecoder::new(DramGeometry::tiny());
/// assert!(rd.activate(RowAddr(0)).is_ok());
/// assert!(rd.activate(RowAddr(1000)).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowDecoder {
    geometry: DramGeometry,
}

impl RowDecoder {
    /// Creates a decoder for the given geometry.
    pub fn new(geometry: DramGeometry) -> Self {
        RowDecoder { geometry }
    }

    /// Validates a single-row activation.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfRange`] for rows beyond the sub-array.
    pub fn activate(&self, row: RowAddr) -> Result<()> {
        self.geometry.check_row(row.0)
    }
}

/// The modified row decoder driving the compute rows, supporting
/// simultaneous activation of 2 or 3 distinct compute rows.
///
/// # Examples
///
/// ```
/// use pim_dram::{decoder::ModifiedRowDecoder, geometry::DramGeometry, address::RowAddr};
///
/// let g = DramGeometry::paper_assembly();
/// let mrd = ModifiedRowDecoder::new(g);
/// let x1 = RowAddr(g.compute_row(0));
/// let x2 = RowAddr(g.compute_row(1));
/// assert!(mrd.activate_pair([x1, x2]).is_ok());
/// assert!(mrd.activate_pair([x1, x1]).is_err()); // duplicate row
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModifiedRowDecoder {
    geometry: DramGeometry,
    allow_data_rows: bool,
}

impl ModifiedRowDecoder {
    /// Creates an MRD for the given geometry (compute rows only — the
    /// commodity-DRAM wiring where only `x1..x8` reach the extended
    /// word-line drivers).
    pub fn new(geometry: DramGeometry) -> Self {
        ModifiedRowDecoder { geometry, allow_data_rows: false }
    }

    /// Creates an MRD that may multi-activate *any* distinct rows, the
    /// wiring of non-destructive-sensing substrates (PANDA-style MRAM)
    /// where operands are sensed in place. Bounds and duplicate-row checks
    /// are unchanged.
    pub fn with_data_rows(geometry: DramGeometry) -> Self {
        ModifiedRowDecoder { geometry, allow_data_rows: true }
    }

    /// Validates a two-row simultaneous activation (XNOR/NOR/NAND).
    ///
    /// # Errors
    ///
    /// * [`DramError::NotComputeRow`] if either row is not one of `x1..x8`.
    /// * [`DramError::DuplicateSourceRow`] if both rows are identical.
    pub fn activate_pair(&self, rows: [RowAddr; 2]) -> Result<()> {
        self.check_compute(&rows)?;
        if rows[0] == rows[1] {
            return Err(DramError::DuplicateSourceRow { row: rows[0].0 });
        }
        Ok(())
    }

    /// Validates a triple-row simultaneous activation (TRA carry).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ModifiedRowDecoder::activate_pair`], extended to
    /// three rows.
    pub fn activate_triple(&self, rows: [RowAddr; 3]) -> Result<()> {
        self.check_compute(&rows)?;
        for i in 0..3 {
            for j in (i + 1)..3 {
                if rows[i] == rows[j] {
                    return Err(DramError::DuplicateSourceRow { row: rows[i].0 });
                }
            }
        }
        Ok(())
    }

    /// Validates a general multi-row activation of `rows.len()` rows.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BadActivationCount`] for counts other than 2 or
    /// 3 (the only patterns the 3:8 MRD encodes), plus the per-row checks of
    /// the fixed-arity methods.
    pub fn activate_many(&self, rows: &[RowAddr]) -> Result<()> {
        match rows.len() {
            2 => self.activate_pair([rows[0], rows[1]]),
            3 => self.activate_triple([rows[0], rows[1], rows[2]]),
            n => Err(DramError::BadActivationCount { requested: n, supported: "2 or 3" }),
        }
    }

    fn check_compute(&self, rows: &[RowAddr]) -> Result<()> {
        for r in rows {
            self.geometry.check_row(r.0)?;
            if !self.allow_data_rows && !self.geometry.is_compute_row(r.0) {
                return Err(DramError::NotComputeRow { row: r.0 });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (DramGeometry, ModifiedRowDecoder) {
        let g = DramGeometry::paper_assembly();
        (g, ModifiedRowDecoder::new(g))
    }

    #[test]
    fn pair_requires_compute_rows() {
        let (g, mrd) = setup();
        let ok = mrd.activate_pair([RowAddr(g.compute_row(0)), RowAddr(g.compute_row(1))]);
        assert!(ok.is_ok());
        let bad = mrd.activate_pair([RowAddr(10), RowAddr(g.compute_row(1))]);
        assert!(matches!(bad, Err(DramError::NotComputeRow { row: 10 })));
    }

    #[test]
    fn triple_rejects_duplicates() {
        let (g, mrd) = setup();
        let x = |i| RowAddr(g.compute_row(i));
        assert!(mrd.activate_triple([x(0), x(1), x(2)]).is_ok());
        assert!(matches!(
            mrd.activate_triple([x(0), x(1), x(0)]),
            Err(DramError::DuplicateSourceRow { .. })
        ));
    }

    #[test]
    fn many_rejects_other_arities() {
        let (g, mrd) = setup();
        let x = |i| RowAddr(g.compute_row(i));
        assert!(mrd.activate_many(&[x(0)]).is_err());
        assert!(mrd.activate_many(&[x(0), x(1), x(2), x(3)]).is_err());
        assert!(mrd.activate_many(&[x(0), x(1)]).is_ok());
    }

    #[test]
    fn data_row_wiring_admits_data_rows_but_keeps_other_checks() {
        let g = DramGeometry::paper_assembly();
        let mrd = ModifiedRowDecoder::with_data_rows(g);
        assert!(mrd.activate_pair([RowAddr(10), RowAddr(11)]).is_ok());
        assert!(mrd.activate_triple([RowAddr(10), RowAddr(11), RowAddr(g.compute_row(0))]).is_ok());
        assert!(matches!(
            mrd.activate_pair([RowAddr(10), RowAddr(10)]),
            Err(DramError::DuplicateSourceRow { .. })
        ));
        assert!(mrd.activate_pair([RowAddr(10), RowAddr(g.rows)]).is_err());
    }

    #[test]
    fn regular_decoder_accepts_all_rows() {
        let g = DramGeometry::paper_assembly();
        let rd = RowDecoder::new(g);
        assert!(rd.activate(RowAddr(0)).is_ok());
        assert!(rd.activate(RowAddr(1023)).is_ok());
        assert!(rd.activate(RowAddr(1024)).is_err());
    }
}
