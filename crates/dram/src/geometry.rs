//! DRAM organization parameters (Fig. 1 of the paper).
//!
//! The hierarchy is chip → bank → MAT → computational sub-array. The paper's
//! evaluation configures sub-arrays of 1024 rows × 256 columns, 4×4 MATs per
//! bank, and 16×16 banks per memory group (§IV *Setup*), with 1/1 row/column
//! activation; the throughput comparison of §II-B uses 8 banks.

use crate::error::{DramError, Result};

/// Number of compute rows (x1..x8) wired to the modified row decoder.
pub const COMPUTE_ROWS: usize = 8;

/// Static description of a PIM-DRAM organization.
///
/// # Examples
///
/// ```
/// use pim_dram::geometry::DramGeometry;
///
/// let g = DramGeometry::paper_assembly();
/// assert_eq!(g.rows, 1024);
/// assert_eq!(g.cols, 256);
/// assert_eq!(g.data_rows(), 1016);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramGeometry {
    /// Number of chips in the memory group.
    pub chips: usize,
    /// Banks per chip.
    pub banks_per_chip: usize,
    /// MATs per bank.
    pub mats_per_bank: usize,
    /// Computational sub-arrays per MAT.
    pub subarrays_per_mat: usize,
    /// Rows per sub-array (data + compute).
    pub rows: usize,
    /// Columns (bits) per sub-array row.
    pub cols: usize,
    /// MATs that may be active simultaneously within one bank
    /// (the paper's 1/1 row/column activation).
    pub active_mats_per_bank: usize,
    /// Sub-arrays that may compute simultaneously within one active MAT.
    pub active_subarrays_per_mat: usize,
}

impl DramGeometry {
    /// The §II-B throughput-comparison configuration: 8 banks of
    /// 1024×256 computational sub-arrays (identical across all compared
    /// PIM platforms).
    pub fn paper_throughput() -> Self {
        DramGeometry {
            chips: 1,
            banks_per_chip: 8,
            mats_per_bank: 16,
            subarrays_per_mat: 16,
            rows: 1024,
            cols: 256,
            active_mats_per_bank: 4,
            active_subarrays_per_mat: 16,
        }
    }

    /// The §IV genome-assembly configuration: 4×4 MATs per bank, 16×16
    /// banks per memory group, 1/1 row/column activation.
    pub fn paper_assembly() -> Self {
        DramGeometry {
            chips: 1,
            banks_per_chip: 256, // 16 × 16
            mats_per_bank: 16,   // 4 × 4
            subarrays_per_mat: 8,
            rows: 1024,
            cols: 256,
            active_mats_per_bank: 1, // 1/1 row/column activation
            active_subarrays_per_mat: 8,
        }
    }

    /// A tiny configuration for unit tests (fast to allocate and walk).
    pub fn tiny() -> Self {
        DramGeometry {
            chips: 1,
            banks_per_chip: 2,
            mats_per_bank: 2,
            subarrays_per_mat: 2,
            rows: 32,
            cols: 64,
            active_mats_per_bank: 2,
            active_subarrays_per_mat: 2,
        }
    }

    /// Rows available for data storage (total minus the 8 compute rows).
    pub fn data_rows(&self) -> usize {
        self.rows - COMPUTE_ROWS
    }

    /// Index of compute row `i` (0-based, `i < 8`): compute rows occupy the
    /// top of the row space, after the 1016 data rows (Fig. 1b).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    pub fn compute_row(&self, i: usize) -> usize {
        assert!(i < COMPUTE_ROWS, "compute row index {i} out of range");
        self.data_rows() + i
    }

    /// Whether `row` is one of the 8 compute rows.
    pub fn is_compute_row(&self, row: usize) -> bool {
        row >= self.data_rows() && row < self.rows
    }

    /// Total sub-arrays in the memory group.
    pub fn total_subarrays(&self) -> usize {
        self.chips * self.banks_per_chip * self.mats_per_bank * self.subarrays_per_mat
    }

    /// Sub-arrays that can execute an in-memory operation in the same cycle.
    pub fn parallel_subarrays(&self) -> usize {
        self.chips
            * self.banks_per_chip
            * self.active_mats_per_bank.min(self.mats_per_bank)
            * self.active_subarrays_per_mat.min(self.subarrays_per_mat)
    }

    /// Total capacity in bits.
    pub fn capacity_bits(&self) -> u128 {
        self.total_subarrays() as u128 * self.rows as u128 * self.cols as u128
    }

    /// Bits produced by one group-wide parallel in-memory operation
    /// (one row per active sub-array).
    pub fn bits_per_parallel_op(&self) -> u128 {
        self.parallel_subarrays() as u128 * self.cols as u128
    }

    /// Validates a (chip, bank, mat, subarray) coordinate.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::AddressOutOfRange`] naming the first coordinate
    /// that exceeds the geometry.
    pub fn check_coords(
        &self,
        chip: usize,
        bank: usize,
        mat: usize,
        subarray: usize,
    ) -> Result<()> {
        if chip >= self.chips {
            return Err(DramError::AddressOutOfRange {
                component: "chip",
                index: chip,
                limit: self.chips,
            });
        }
        if bank >= self.banks_per_chip {
            return Err(DramError::AddressOutOfRange {
                component: "bank",
                index: bank,
                limit: self.banks_per_chip,
            });
        }
        if mat >= self.mats_per_bank {
            return Err(DramError::AddressOutOfRange {
                component: "mat",
                index: mat,
                limit: self.mats_per_bank,
            });
        }
        if subarray >= self.subarrays_per_mat {
            return Err(DramError::AddressOutOfRange {
                component: "subarray",
                index: subarray,
                limit: self.subarrays_per_mat,
            });
        }
        Ok(())
    }

    /// Validates a row index within a sub-array.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfRange`] if `row >= self.rows`.
    pub fn check_row(&self, row: usize) -> Result<()> {
        if row >= self.rows {
            return Err(DramError::RowOutOfRange { row, rows: self.rows });
        }
        Ok(())
    }
}

impl Default for DramGeometry {
    fn default() -> Self {
        DramGeometry::paper_assembly()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_assembly_matches_section_iv() {
        let g = DramGeometry::paper_assembly();
        assert_eq!(g.banks_per_chip, 256);
        assert_eq!(g.mats_per_bank, 16);
        assert_eq!(g.rows, 1024);
        assert_eq!(g.cols, 256);
        assert_eq!(g.data_rows(), 1016);
    }

    #[test]
    fn compute_rows_are_top_eight() {
        let g = DramGeometry::paper_assembly();
        assert_eq!(g.compute_row(0), 1016);
        assert_eq!(g.compute_row(7), 1023);
        assert!(g.is_compute_row(1016));
        assert!(g.is_compute_row(1023));
        assert!(!g.is_compute_row(1015));
    }

    #[test]
    fn parallel_subarrays_respects_activation_limits() {
        let g = DramGeometry::paper_throughput();
        assert_eq!(g.parallel_subarrays(), 8 * 4 * 16);
        assert_eq!(g.bits_per_parallel_op(), (8 * 4 * 16 * 256) as u128);
    }

    #[test]
    fn coord_validation() {
        let g = DramGeometry::tiny();
        assert!(g.check_coords(0, 1, 1, 1).is_ok());
        assert!(matches!(
            g.check_coords(0, 2, 0, 0),
            Err(DramError::AddressOutOfRange { component: "bank", .. })
        ));
        assert!(g.check_row(31).is_ok());
        assert!(g.check_row(32).is_err());
    }

    #[test]
    fn capacity_is_product() {
        let g = DramGeometry::tiny();
        assert_eq!(g.capacity_bits(), (2 * 2 * 2 * 32 * 64) as u128);
    }

    #[test]
    #[should_panic(expected = "compute row index")]
    fn compute_row_bounds() {
        DramGeometry::tiny().compute_row(8);
    }
}
