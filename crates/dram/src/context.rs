//! Per-sub-array execution contexts.
//!
//! A [`SubarrayContext`] owns everything one computational sub-array needs
//! to execute independently of the rest of the hierarchy: the bit-accurate
//! [`Subarray`] (rows, decoders, reconfigurable sense amplifier) plus a
//! local [`EnergyLedger`]. The [`crate::controller::Controller`] is a thin
//! address-mapping façade over a set of contexts; a parallel dispatcher
//! can *detach* a context ([`crate::controller::Controller::detach_context`]),
//! drive it from a worker thread, and reattach it, with the context's
//! integer ledger merging back into the controller's totals exactly.

use crate::address::{RowAddr, SubarrayId};
use crate::bitrow::BitRow;
use crate::error::Result;
use crate::fault::FaultInjector;
use crate::geometry::DramGeometry;
use crate::ledger::{CommandClass, CommandCosts, EnergyLedger};
use crate::profile::ActivationModel;
use crate::sense_amp::SaMode;
use crate::stats::CommandStats;
use crate::subarray::Subarray;
use pim_obsv::{ContextObsv, HistKey, Metric};

/// Maps one synthetic/batched command class onto its observability
/// metric and the DRAM row activations it implies.
pub(crate) fn record_class_obsv(obsv: &mut ContextObsv, class: CommandClass, count: u64) {
    let (metric, activations) = match class {
        CommandClass::Read => (Metric::HostReads, 1),
        CommandClass::Write => (Metric::HostWrites, 1),
        CommandClass::Aap => (Metric::AapCopy, 2),
        CommandClass::Aap2 => (Metric::Aap2, 3),
        CommandClass::Aap3 => (Metric::Aap3, 4),
        CommandClass::Dpu => (Metric::DpuOps, 0),
    };
    obsv.record(metric, count);
    obsv.record(Metric::RowActivations, activations * count);
}

/// One sub-array's state, timing/energy accounting, and command execution.
///
/// The operation set mirrors the controller's per-sub-array surface
/// (`write_row`, `aap_copy`, `aap2`, …) with identical semantics and
/// identical unit costs, so a command sequence produces the same array
/// bytes and the same ledger totals whether it runs through the controller
/// or through a detached context. Context execution is not traced; the
/// controller's [`crate::trace::CommandTrace`] covers only commands issued
/// through the façade.
#[derive(Debug, Clone)]
pub struct SubarrayContext {
    id: SubarrayId,
    subarray: Subarray,
    costs: CommandCosts,
    ledger: EnergyLedger,
    /// Optional sense-amp read-out fault injection (see [`crate::fault`]).
    fault: Option<FaultInjector>,
    /// Hot-path observability counters (fixed arrays, no heap per record).
    obsv: ContextObsv,
}

impl SubarrayContext {
    /// Creates a fresh (all-zero rows) context for `id` with the given
    /// activation model.
    pub(crate) fn new(
        id: SubarrayId,
        geometry: DramGeometry,
        costs: CommandCosts,
        activation: ActivationModel,
    ) -> Self {
        SubarrayContext {
            id,
            subarray: Subarray::with_activation(geometry, activation),
            costs,
            ledger: EnergyLedger::default(),
            fault: None,
            obsv: ContextObsv::default(),
        }
    }

    /// Arms (or disarms, with `None`) read-out fault injection.
    pub(crate) fn set_fault_injector(&mut self, injector: Option<FaultInjector>) {
        self.fault = injector;
    }

    /// Bits flipped by fault injection on this context so far.
    pub fn fault_flips(&self) -> u64 {
        self.fault.as_ref().map_or(0, FaultInjector::flips)
    }

    /// Applies the armed fault model to one sensed read-out. Stored rows
    /// are untouched — only what the sense amplifier hands back flips.
    fn sense(&mut self, mut data: BitRow) -> BitRow {
        if let Some(injector) = &mut self.fault {
            let before = injector.flips();
            injector.corrupt(&mut data);
            let flipped = injector.flips() - before;
            self.obsv.record(Metric::FaultFlips, flipped);
        }
        data
    }

    /// The sub-array this context owns.
    pub fn id(&self) -> SubarrayId {
        self.id
    }

    /// The sub-array geometry.
    pub fn geometry(&self) -> &DramGeometry {
        self.subarray.geometry()
    }

    /// Address of compute row `i` (`x1..x8` ⇒ `i ∈ 0..8`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    pub fn compute_row(&self, i: usize) -> RowAddr {
        RowAddr(self.geometry().compute_row(i))
    }

    /// The local integer ledger.
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// The floating-point statistics view of the local ledger.
    pub fn stats(&self) -> CommandStats {
        self.ledger.to_stats()
    }

    /// Read access to the underlying sub-array (inspection).
    pub fn subarray(&self) -> &Subarray {
        &self.subarray
    }

    pub(crate) fn reset_ledger(&mut self) {
        self.ledger = EnergyLedger::default();
    }

    /// Overwrites the local ledger (checkpoint restore).
    pub(crate) fn set_ledger(&mut self, ledger: EnergyLedger) {
        self.ledger = ledger;
    }

    /// Hot-path observability counters accumulated by this context since
    /// the last reset (cumulative across detach/reattach cycles).
    pub fn obsv(&self) -> &ContextObsv {
        &self.obsv
    }

    pub(crate) fn reset_obsv(&mut self) {
        self.obsv.reset();
    }

    /// Adds `n` to a stage-level metric on this context's counters.
    pub fn record_metric(&mut self, metric: Metric, n: u64) {
        self.obsv.record(metric, n);
    }

    /// Records one histogram sample on this context's counters.
    pub fn record_value(&mut self, key: HistKey, value: u64) {
        self.obsv.record_value(key, value);
    }

    fn charge(&mut self, class: CommandClass) {
        self.ledger.charge(class, &self.costs);
    }

    /// One command's observability bookkeeping: the command-kind counter
    /// plus its implied row activations.
    fn note(&mut self, metric: Metric, activations: u64) {
        self.obsv.record(metric, 1);
        self.obsv.record(Metric::RowActivations, activations);
    }

    /// Writes one row from the host (charged as `WR`).
    ///
    /// # Errors
    ///
    /// Propagates sub-array addressing/width errors.
    pub fn write_row(&mut self, row: impl Into<RowAddr>, data: &BitRow) -> Result<()> {
        self.subarray.write(row.into(), data)?;
        self.charge(CommandClass::Write);
        self.note(Metric::HostWrites, 1);
        Ok(())
    }

    /// Reads one row to the host (charged as `RD`).
    ///
    /// # Errors
    ///
    /// Propagates sub-array addressing errors.
    pub fn read_row(&mut self, row: impl Into<RowAddr>) -> Result<BitRow> {
        let data = self.subarray.read(row.into())?;
        self.charge(CommandClass::Read);
        self.note(Metric::HostReads, 1);
        self.obsv.record(Metric::SensedReads, 1);
        Ok(self.sense(data))
    }

    /// Reads a row *without* charging a command (debug/verification view).
    ///
    /// # Errors
    ///
    /// Propagates sub-array addressing errors.
    pub fn peek_row(&self, row: impl Into<RowAddr>) -> Result<BitRow> {
        self.subarray.read(row.into())
    }

    /// Writes a row *without* charging a command; pair with
    /// [`SubarrayContext::record_synthetic`] as with the controller's
    /// `poke_row`.
    ///
    /// # Errors
    ///
    /// Propagates sub-array addressing/width errors.
    pub fn poke_row(&mut self, row: impl Into<RowAddr>, data: &BitRow) -> Result<()> {
        self.subarray.write(row.into(), data)
    }

    /// Type-1 AAP: in-array copy (RowClone-FPM).
    ///
    /// # Errors
    ///
    /// Propagates sub-array addressing errors.
    pub fn aap_copy(&mut self, src: impl Into<RowAddr>, dst: impl Into<RowAddr>) -> Result<()> {
        self.subarray.copy(src.into(), dst.into())?;
        self.charge(CommandClass::Aap);
        self.note(Metric::AapCopy, 2);
        Ok(())
    }

    /// Type-2 AAP: two-row activation evaluating `mode`.
    ///
    /// # Errors
    ///
    /// Propagates decoder and addressing errors (sources must be compute
    /// rows; see [`crate::subarray::Subarray::op2`]).
    pub fn aap2(
        &mut self,
        mode: SaMode,
        srcs: [RowAddr; 2],
        dst: impl Into<RowAddr>,
    ) -> Result<BitRow> {
        let out = self.subarray.op2(mode, srcs, dst.into())?;
        self.charge(CommandClass::Aap2);
        self.note(Metric::Aap2, 3);
        self.obsv.record(Metric::SensedReads, 1);
        Ok(self.sense(out))
    }

    /// Type-2 AAP whose sensed output the caller does not need. Identical
    /// array state and accounting as [`SubarrayContext::aap2`], without
    /// materializing the sensed row. When fault injection is armed the
    /// sensed path runs anyway (on a throwaway copy) so the injector's
    /// deterministic stream position and flip counters stay in lock-step
    /// with the returning variant.
    ///
    /// # Errors
    ///
    /// Same as [`SubarrayContext::aap2`].
    pub fn aap2_discard(
        &mut self,
        mode: SaMode,
        srcs: [RowAddr; 2],
        dst: impl Into<RowAddr>,
    ) -> Result<()> {
        if self.fault.is_some() {
            return self.aap2(mode, srcs, dst).map(|_| ());
        }
        self.subarray.op2_apply(mode, srcs, dst.into())?;
        self.charge(CommandClass::Aap2);
        self.note(Metric::Aap2, 3);
        self.obsv.record(Metric::DiscardReads, 1);
        Ok(())
    }

    /// Single-cycle in-memory XNOR2.
    ///
    /// # Errors
    ///
    /// Same as [`SubarrayContext::aap2`].
    pub fn aap2_xnor(&mut self, srcs: [RowAddr; 2], dst: impl Into<RowAddr>) -> Result<BitRow> {
        self.aap2(SaMode::Xnor, srcs, dst)
    }

    /// Sum cycle of the in-memory adder (XOR with the latched carry).
    ///
    /// # Errors
    ///
    /// Same as [`SubarrayContext::aap2`].
    pub fn aap2_sum(&mut self, srcs: [RowAddr; 2], dst: impl Into<RowAddr>) -> Result<BitRow> {
        self.aap2(SaMode::CarrySum, srcs, dst)
    }

    /// Type-3 AAP (Ambit TRA): 3-input majority / carry, latched.
    ///
    /// # Errors
    ///
    /// Propagates decoder and addressing errors.
    pub fn aap3_carry(&mut self, srcs: [RowAddr; 3], dst: impl Into<RowAddr>) -> Result<BitRow> {
        let out = self.subarray.op3_carry(srcs, dst.into())?;
        self.charge(CommandClass::Aap3);
        self.note(Metric::Aap3, 4);
        self.obsv.record(Metric::SensedReads, 1);
        Ok(self.sense(out))
    }

    /// Type-3 AAP whose sensed output the caller does not need (see
    /// [`SubarrayContext::aap2_discard`] for the fault-injection
    /// lock-step guarantee).
    ///
    /// # Errors
    ///
    /// Same as [`SubarrayContext::aap3_carry`].
    pub fn aap3_carry_discard(
        &mut self,
        srcs: [RowAddr; 3],
        dst: impl Into<RowAddr>,
    ) -> Result<()> {
        if self.fault.is_some() {
            return self.aap3_carry(srcs, dst).map(|_| ());
        }
        self.subarray.op3_carry_apply(srcs, dst.into())?;
        self.charge(CommandClass::Aap3);
        self.note(Metric::Aap3, 4);
        self.obsv.record(Metric::DiscardReads, 1);
        Ok(())
    }

    /// Clears the SA carry latch (start of a new addition).
    pub fn reset_latch(&mut self) {
        self.subarray.reset_latch();
    }

    /// Records one DPU scalar operation against this context's ledger.
    pub fn dpu_op(&mut self) {
        self.charge(CommandClass::Dpu);
        self.obsv.record(Metric::DpuOps, 1);
    }

    /// Records `n` DPU scalar operations.
    pub fn dpu_ops(&mut self, n: u64) {
        self.ledger.charge_many(CommandClass::Dpu, &self.costs, n);
        self.obsv.record(Metric::DpuOps, n);
    }

    /// Records `count` synthetic commands without executing them (the
    /// context-local counterpart of the controller's `record_synthetic`).
    ///
    /// # Panics
    ///
    /// Panics on an unknown mnemonic.
    pub fn record_synthetic(&mut self, mnemonic: &str, count: u64) {
        if count == 0 {
            return;
        }
        let class = CommandClass::from_mnemonic(mnemonic)
            .unwrap_or_else(|| panic!("unknown command mnemonic {mnemonic:?}"));
        self.ledger.charge_many(class, &self.costs, count);
        record_class_obsv(&mut self.obsv, class, count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::EnergyParams;
    use crate::fault::FaultConfig;
    use crate::timing::TimingParams;

    fn context() -> SubarrayContext {
        let g = DramGeometry::tiny();
        let costs = CommandCosts::new(&TimingParams::default(), &EnergyParams::default(), g.cols);
        SubarrayContext::new(
            SubarrayId::from_linear_index(&g, 0),
            g,
            costs,
            ActivationModel::DestructiveCharge,
        )
    }

    #[test]
    fn context_executes_the_xnor_sequence() {
        let mut ctx = context();
        let cols = ctx.geometry().cols;
        let a = BitRow::from_fn(cols, |i| i % 2 == 0);
        let b = BitRow::from_fn(cols, |i| i % 3 == 0);
        ctx.write_row(1, &a).unwrap();
        ctx.write_row(2, &b).unwrap();
        ctx.aap_copy(1, ctx.compute_row(0)).unwrap();
        ctx.aap_copy(2, ctx.compute_row(1)).unwrap();
        let out = ctx.aap2_xnor([ctx.compute_row(0), ctx.compute_row(1)], 5).unwrap();
        assert_eq!(out, a.xnor(&b));
        let s = ctx.stats();
        assert_eq!((s.writes, s.aap, s.aap2), (2, 2, 1));
        assert!(s.serial_ns > 0.0 && s.energy_nj > 0.0);
    }

    #[test]
    fn peek_and_poke_do_not_charge() {
        let mut ctx = context();
        let cols = ctx.geometry().cols;
        ctx.poke_row(0, &BitRow::ones(cols)).unwrap();
        let before = *ctx.ledger();
        let row = ctx.peek_row(0).unwrap();
        assert_eq!(row, BitRow::ones(cols));
        assert_eq!(*ctx.ledger(), before);
        assert_eq!(before.total_commands(), 0);
    }

    #[test]
    fn discard_variants_match_returning_variants() {
        let mut a = context();
        let mut b = context();
        let cols = a.geometry().cols;
        let x = BitRow::from_fn(cols, |i| i % 2 == 0);
        let y = BitRow::from_fn(cols, |i| i % 3 == 0);
        for ctx in [&mut a, &mut b] {
            ctx.write_row(1, &x).unwrap();
            ctx.write_row(2, &y).unwrap();
            ctx.aap_copy(1, ctx.compute_row(0)).unwrap();
            ctx.aap_copy(2, ctx.compute_row(1)).unwrap();
            ctx.aap_copy(1, ctx.compute_row(2)).unwrap();
        }
        let (x1, x2, x3) = (a.compute_row(0), a.compute_row(1), a.compute_row(2));
        a.aap2(SaMode::Xnor, [x1, x2], 5).unwrap();
        b.aap2_discard(SaMode::Xnor, [x1, x2], 5).unwrap();
        a.aap3_carry([x1, x2, x3], 6).unwrap();
        b.aap3_carry_discard([x1, x2, x3], 6).unwrap();
        assert_eq!(a.ledger(), b.ledger());
        for row in 0..a.geometry().rows {
            assert_eq!(a.peek_row(row).unwrap(), b.peek_row(row).unwrap());
        }
        assert_eq!(a.subarray().latch(), b.subarray().latch());
    }

    #[test]
    fn discard_variants_keep_fault_stream_in_lock_step() {
        let mut a = context();
        let mut b = context();
        a.set_fault_injector(Some(FaultInjector::new(&FaultConfig::new(0.05, 7), 0)));
        b.set_fault_injector(Some(FaultInjector::new(&FaultConfig::new(0.05, 7), 0)));
        let cols = a.geometry().cols;
        let x = BitRow::from_fn(cols, |i| i % 2 == 0);
        for ctx in [&mut a, &mut b] {
            ctx.write_row(1, &x).unwrap();
            ctx.aap_copy(1, ctx.compute_row(0)).unwrap();
            ctx.aap_copy(1, ctx.compute_row(1)).unwrap();
        }
        let (x1, x2) = (a.compute_row(0), a.compute_row(1));
        // Returning vs discard: the injector must advance identically so the
        // next sensed read-out sees the same corruption on both contexts.
        a.aap2(SaMode::Xnor, [x1, x2], 5).unwrap();
        b.aap2_discard(SaMode::Xnor, [x1, x2], 5).unwrap();
        assert_eq!(a.fault_flips(), b.fault_flips());
        assert_eq!(a.read_row(5).unwrap(), b.read_row(5).unwrap());
    }

    #[test]
    fn synthetic_commands_hit_the_ledger() {
        let mut ctx = context();
        ctx.record_synthetic("AAP", 3);
        ctx.record_synthetic("RD", 0);
        ctx.dpu_ops(2);
        let s = ctx.stats();
        assert_eq!((s.aap, s.reads, s.dpu), (3, 0, 2));
    }

    #[test]
    fn obsv_counters_mirror_executed_commands() {
        let mut ctx = context();
        let cols = ctx.geometry().cols;
        ctx.write_row(1, &BitRow::from_fn(cols, |i| i % 2 == 0)).unwrap();
        ctx.write_row(2, &BitRow::from_fn(cols, |i| i % 3 == 0)).unwrap();
        ctx.aap_copy(1, ctx.compute_row(0)).unwrap();
        ctx.aap_copy(2, ctx.compute_row(1)).unwrap();
        let (x1, x2) = (ctx.compute_row(0), ctx.compute_row(1));
        ctx.aap2(SaMode::Xnor, [x1, x2], 5).unwrap();
        ctx.aap2_discard(SaMode::Xnor, [x1, x2], 6).unwrap();
        ctx.record_synthetic("AAP3", 2);
        let c = &ctx.obsv().counters;
        assert_eq!(c.get(Metric::HostWrites), 2);
        assert_eq!(c.get(Metric::AapCopy), 2);
        assert_eq!(c.get(Metric::Aap2), 2);
        assert_eq!(c.get(Metric::Aap3), 2);
        assert_eq!(c.get(Metric::SensedReads), 1);
        assert_eq!(c.get(Metric::DiscardReads), 1);
        // 2×WR(1) + 2×AAP(2) + 2×AAP2(3) + 2×AAP3(4, synthetic) = 20.
        assert_eq!(c.get(Metric::RowActivations), 20);
        // Observability counters track the ledger's command totals exactly
        // for the executed classes.
        assert_eq!(
            c.get(Metric::Aap2) + c.get(Metric::AapCopy) + c.get(Metric::HostWrites),
            ctx.ledger().total_commands() - 2
        );
    }
}
