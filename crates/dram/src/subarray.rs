//! Bit-accurate functional model of one computational sub-array.
//!
//! A sub-array stores its 1024 × 256 bits exactly and executes the in-memory
//! primitives with the same *destructive* semantics as the hardware: a
//! multi-row activation charge-shares the activated cells, and the sense
//! amplifier then drives the resolved logic value back into **all** activated
//! rows as well as the destination row. This is why the algorithm always
//! RowClones operands into the compute rows `x1..x8` first (§II-A) — the
//! originals in the data rows stay intact.

use crate::address::RowAddr;
use crate::bitrow::BitRow;
use crate::decoder::{ModifiedRowDecoder, RowDecoder};
use crate::error::{DramError, Result};
use crate::geometry::DramGeometry;
use crate::profile::ActivationModel;
use crate::sense_amp::{SaMode, SenseAmpArray};

/// One computational sub-array: rows of bits plus its reconfigurable SA.
///
/// # Examples
///
/// ```
/// use pim_dram::{subarray::Subarray, geometry::DramGeometry, bitrow::BitRow, address::RowAddr};
///
/// let g = DramGeometry::tiny();
/// let mut s = Subarray::new(g);
/// s.write(RowAddr(3), &BitRow::ones(g.cols))?;
/// assert!(s.read(RowAddr(3))?.all_ones());
/// # Ok::<(), pim_dram::DramError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Subarray {
    geometry: DramGeometry,
    rows: Vec<BitRow>,
    sa: SenseAmpArray,
    rd: RowDecoder,
    mrd: ModifiedRowDecoder,
    /// Sense-amp staging row: multi-row activations resolve into this
    /// scratch row, which then fans out to the activated rows and `dst` by
    /// word copy. Models the row buffer; never observable through reads.
    scratch: BitRow,
    /// Physical activation semantics: destructive charge sharing (DRAM)
    /// writes the resolved value back into every activated source row;
    /// non-destructive sensing (MRAM) leaves sources intact.
    activation: ActivationModel,
}

impl Subarray {
    /// Creates an all-zero sub-array for the given geometry with the
    /// destructive charge-sharing (DRAM) activation model.
    pub fn new(geometry: DramGeometry) -> Self {
        Subarray::with_activation(geometry, ActivationModel::DestructiveCharge)
    }

    /// Creates an all-zero sub-array with an explicit activation model.
    /// Non-destructive sensing also rewires the modified row decoder so
    /// data rows may appear in multi-row activation sets directly.
    pub fn with_activation(geometry: DramGeometry, activation: ActivationModel) -> Self {
        let mrd = match activation {
            ActivationModel::DestructiveCharge => ModifiedRowDecoder::new(geometry),
            ActivationModel::NondestructiveSense => ModifiedRowDecoder::with_data_rows(geometry),
        };
        Subarray {
            geometry,
            rows: vec![BitRow::zeros(geometry.cols); geometry.rows],
            sa: SenseAmpArray::new(geometry.cols),
            rd: RowDecoder::new(geometry),
            mrd,
            scratch: BitRow::zeros(geometry.cols),
            activation,
        }
    }

    /// The activation model this sub-array executes with.
    pub fn activation(&self) -> ActivationModel {
        self.activation
    }

    /// The geometry this sub-array was built with.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// Reads a row (host access through the row buffer).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfRange`] for invalid rows.
    pub fn read(&self, row: RowAddr) -> Result<BitRow> {
        self.rd.activate(row)?;
        Ok(self.rows[row.0].clone())
    }

    /// Writes a row (host access through the row buffer).
    ///
    /// # Errors
    ///
    /// * [`DramError::RowOutOfRange`] for invalid rows.
    /// * [`DramError::WidthMismatch`] if `data` is not exactly one row wide.
    pub fn write(&mut self, row: RowAddr, data: &BitRow) -> Result<()> {
        self.rd.activate(row)?;
        if data.len() != self.geometry.cols {
            return Err(DramError::WidthMismatch {
                provided: data.len(),
                expected: self.geometry.cols,
            });
        }
        self.rows[row.0].copy_from(data);
        Ok(())
    }

    /// In-array copy `src → dst` (RowClone-FPM, type-1 AAP).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfRange`] for invalid rows.
    pub fn copy(&mut self, src: RowAddr, dst: RowAddr) -> Result<()> {
        self.rd.activate(src)?;
        self.rd.activate(dst)?;
        // Word-copy between two rows of the same backing vector; a split
        // borrow keeps this allocation-free.
        if src.0 != dst.0 {
            let (lo, hi) = self.rows.split_at_mut(src.0.max(dst.0));
            if src.0 < dst.0 {
                hi[0].copy_from(&lo[src.0]);
            } else {
                lo[dst.0].copy_from(&hi[0]);
            }
        }
        Ok(())
    }

    /// Two-row activation (type-2 AAP): evaluates `mode` over the two source
    /// compute rows, writes the result to both sources (destructive) and to
    /// `dst`.
    ///
    /// # Errors
    ///
    /// * [`DramError::NotComputeRow`] if a source is not a compute row.
    /// * [`DramError::DuplicateSourceRow`] if the sources coincide.
    /// * [`DramError::RowOutOfRange`] for invalid rows.
    pub fn op2(&mut self, mode: SaMode, srcs: [RowAddr; 2], dst: RowAddr) -> Result<BitRow> {
        self.op2_apply(mode, srcs, dst)?;
        Ok(self.rows[dst.0].clone())
    }

    /// [`Subarray::op2`] without materializing the result: the activation
    /// resolves into the scratch row and fans out by word copy, leaving the
    /// array in exactly the same state with zero allocation. This is the
    /// hot-path form bulk executors use when they drop the result.
    ///
    /// # Errors
    ///
    /// Same as [`Subarray::op2`].
    pub fn op2_apply(&mut self, mode: SaMode, srcs: [RowAddr; 2], dst: RowAddr) -> Result<()> {
        self.mrd.activate_pair(srcs)?;
        self.rd.activate(dst)?;
        let Subarray { rows, sa, scratch, activation, .. } = self;
        let (a, b) = (&rows[srcs[0].0], &rows[srcs[1].0]);
        match mode {
            SaMode::Nor => sa.two_row_nor_into(a, b, scratch),
            SaMode::Nand => sa.two_row_nand_into(a, b, scratch),
            SaMode::Xor => sa.two_row_xor_into(a, b, scratch),
            SaMode::Xnor => sa.two_row_xnor_into(a, b, scratch),
            SaMode::CarrySum => sa.sum_from_latch_into(a, b, scratch),
            SaMode::Memory | SaMode::Carry => {
                return Err(DramError::BadActivationCount {
                    requested: 2,
                    supported: "logic modes only",
                })
            }
        }
        if *activation == ActivationModel::DestructiveCharge {
            rows[srcs[0].0].copy_from(scratch);
            rows[srcs[1].0].copy_from(scratch);
        }
        rows[dst.0].copy_from(scratch);
        Ok(())
    }

    /// Triple-row activation (type-3 AAP, Ambit TRA): 3-input majority. The
    /// carry is latched in the SA, written destructively to all three source
    /// rows, and to `dst`.
    ///
    /// # Errors
    ///
    /// Same classes as [`Subarray::op2`], over three source rows.
    pub fn op3_carry(&mut self, srcs: [RowAddr; 3], dst: RowAddr) -> Result<BitRow> {
        self.op3_carry_apply(srcs, dst)?;
        Ok(self.rows[dst.0].clone())
    }

    /// [`Subarray::op3_carry`] without materializing the carry (see
    /// [`Subarray::op2_apply`]); the SA latch is updated identically.
    ///
    /// # Errors
    ///
    /// Same as [`Subarray::op3_carry`].
    pub fn op3_carry_apply(&mut self, srcs: [RowAddr; 3], dst: RowAddr) -> Result<()> {
        self.mrd.activate_triple(srcs)?;
        self.rd.activate(dst)?;
        let Subarray { rows, sa, scratch, activation, .. } = self;
        let (a, b, c) = (&rows[srcs[0].0], &rows[srcs[1].0], &rows[srcs[2].0]);
        sa.triple_row_carry_into(a, b, c, scratch);
        if *activation == ActivationModel::DestructiveCharge {
            for s in srcs {
                rows[s.0].copy_from(scratch);
            }
        }
        rows[dst.0].copy_from(scratch);
        Ok(())
    }

    /// Clears the SA carry latch (start of a fresh addition).
    pub fn reset_latch(&mut self) {
        self.sa.reset_latch();
    }

    /// Current SA latch content.
    pub fn latch(&self) -> &BitRow {
        self.sa.latch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute(g: &DramGeometry, i: usize) -> RowAddr {
        RowAddr(g.compute_row(i))
    }

    #[test]
    fn copy_then_xnor_preserves_data_rows() {
        let g = DramGeometry::tiny();
        let mut s = Subarray::new(g);
        let a = BitRow::from_fn(g.cols, |i| i % 2 == 0);
        let b = BitRow::from_fn(g.cols, |i| i % 4 == 0);
        s.write(RowAddr(1), &a).unwrap();
        s.write(RowAddr(2), &b).unwrap();
        s.copy(RowAddr(1), compute(&g, 0)).unwrap();
        s.copy(RowAddr(2), compute(&g, 1)).unwrap();
        let r = s.op2(SaMode::Xnor, [compute(&g, 0), compute(&g, 1)], RowAddr(5)).unwrap();
        assert_eq!(r, a.xnor(&b));
        assert_eq!(s.read(RowAddr(5)).unwrap(), a.xnor(&b));
        // Originals untouched; compute rows destroyed (hold the result).
        assert_eq!(s.read(RowAddr(1)).unwrap(), a);
        assert_eq!(s.read(RowAddr(2)).unwrap(), b);
        assert_eq!(s.read(compute(&g, 0)).unwrap(), a.xnor(&b));
    }

    #[test]
    fn op2_is_destructive_on_sources() {
        let g = DramGeometry::tiny();
        let mut s = Subarray::new(g);
        let a = BitRow::ones(g.cols);
        s.write(RowAddr(0), &a).unwrap();
        s.copy(RowAddr(0), compute(&g, 0)).unwrap();
        // x2 stays zero; XNOR(1,0) = 0.
        s.op2(SaMode::Xnor, [compute(&g, 0), compute(&g, 1)], RowAddr(3)).unwrap();
        assert!(s.read(compute(&g, 0)).unwrap().all_zeros());
        assert!(s.read(compute(&g, 1)).unwrap().all_zeros());
    }

    #[test]
    fn op2_rejects_data_row_sources() {
        let g = DramGeometry::tiny();
        let mut s = Subarray::new(g);
        let err = s.op2(SaMode::Xnor, [RowAddr(0), compute(&g, 0)], RowAddr(3)).unwrap_err();
        assert!(matches!(err, DramError::NotComputeRow { row: 0 }));
    }

    #[test]
    fn op3_latches_carry_and_sum_completes_adder() {
        let g = DramGeometry::tiny();
        let mut s = Subarray::new(g);
        let a = BitRow::from_fn(g.cols, |i| i % 3 == 0);
        let b = BitRow::from_fn(g.cols, |i| i % 5 == 0);
        let cin = BitRow::from_fn(g.cols, |i| i % 7 == 0);
        s.write(RowAddr(1), &a).unwrap();
        s.write(RowAddr(2), &b).unwrap();
        s.write(RowAddr(3), &cin).unwrap();
        // Carry = MAJ(a, b, cin) via TRA on x1..x3.
        s.copy(RowAddr(1), compute(&g, 0)).unwrap();
        s.copy(RowAddr(2), compute(&g, 1)).unwrap();
        s.copy(RowAddr(3), compute(&g, 2)).unwrap();
        let carry =
            s.op3_carry([compute(&g, 0), compute(&g, 1), compute(&g, 2)], RowAddr(8)).unwrap();
        assert_eq!(carry, BitRow::maj3(&a, &b, &cin));
        assert_eq!(s.latch(), &carry);
        // Hmm: sum needs cin latched, so the controller latches cin first in
        // the real sequence; here we verify sum_from_latch algebra directly.
        s.reset_latch();
        assert!(s.latch().all_zeros());
    }

    #[test]
    fn nondestructive_sensing_leaves_sources_intact_and_admits_data_rows() {
        let g = DramGeometry::tiny();
        let mut s = Subarray::with_activation(g, ActivationModel::NondestructiveSense);
        let a = BitRow::from_fn(g.cols, |i| i % 2 == 0);
        let b = BitRow::from_fn(g.cols, |i| i % 3 == 0);
        s.write(RowAddr(1), &a).unwrap();
        s.write(RowAddr(2), &b).unwrap();
        // Data rows activate directly; sensing preserves the operands.
        let r = s.op2(SaMode::Xnor, [RowAddr(1), RowAddr(2)], RowAddr(5)).unwrap();
        assert_eq!(r, a.xnor(&b));
        assert_eq!(s.read(RowAddr(1)).unwrap(), a);
        assert_eq!(s.read(RowAddr(2)).unwrap(), b);
        // TRA latches the majority without disturbing the sources.
        s.op3_carry([RowAddr(1), RowAddr(2), RowAddr(3)], RowAddr(6)).unwrap();
        let zero = BitRow::zeros(g.cols);
        assert_eq!(s.latch(), &BitRow::maj3(&a, &b, &zero));
        assert_eq!(s.read(RowAddr(1)).unwrap(), a);
        assert_eq!(s.read(RowAddr(2)).unwrap(), b);
        assert!(s.read(RowAddr(3)).unwrap().all_zeros());
    }

    #[test]
    fn write_width_checked() {
        let g = DramGeometry::tiny();
        let mut s = Subarray::new(g);
        let err = s.write(RowAddr(0), &BitRow::zeros(g.cols + 1)).unwrap_err();
        assert!(matches!(err, DramError::WidthMismatch { .. }));
    }

    #[test]
    fn mode_restrictions_on_op2() {
        let g = DramGeometry::tiny();
        let mut s = Subarray::new(g);
        let err = s.op2(SaMode::Memory, [compute(&g, 0), compute(&g, 1)], RowAddr(0)).unwrap_err();
        assert!(matches!(err, DramError::BadActivationCount { .. }));
    }
}
