//! Bank-level command scheduling.
//!
//! The perf models approximate wall-clock as `serial_time / chains` with an
//! issue cap. This module computes the ground truth that abstraction
//! approximates: given per-sub-array command queues, the makespan of a
//! schedule under the two real constraints —
//!
//! 1. each sub-array executes its own commands serially (its rows/SA are
//!    occupied for the command's full latency), and
//! 2. the shared command bus issues at most one command every `issue_ns`
//!    (DDR command-bus bandwidth).
//!
//! The scheduler is greedy earliest-ready-first, which is optimal for this
//! two-resource model with equal-length commands per queue.

/// One command queue (a sub-array's serial work), expressed as command
/// latencies in nanoseconds.
pub type CommandQueue = Vec<f64>;

/// Result of scheduling a set of queues.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Total makespan (ns).
    pub makespan_ns: f64,
    /// Sum of all command latencies (the serial time, ns).
    pub serial_ns: f64,
    /// Effective parallelism: `serial / makespan`.
    pub effective_parallelism: f64,
    /// Commands issued.
    pub commands: usize,
}

/// Schedules `queues` under per-sub-array serialization and a shared
/// command bus issuing one command per `issue_ns`.
///
/// # Examples
///
/// ```
/// use pim_dram::schedule::schedule;
///
/// // Two sub-arrays with two 47 ns commands each, fast bus: runs in ~94 ns.
/// let s = schedule(&[vec![47.0, 47.0], vec![47.0, 47.0]], 1.0);
/// assert!((s.makespan_ns - 96.0).abs() < 3.0);
/// assert!(s.effective_parallelism > 1.9);
/// ```
pub fn schedule(queues: &[CommandQueue], issue_ns: f64) -> Schedule {
    let serial_ns: f64 = queues.iter().flatten().sum();
    let commands: usize = queues.iter().map(Vec::len).sum();
    // Per-queue state: next command index and the time the sub-array frees.
    let mut next = vec![0usize; queues.len()];
    let mut free_at = vec![0f64; queues.len()];
    let mut bus_free = 0f64;
    let mut makespan = 0f64;
    let mut remaining = commands;
    while remaining > 0 {
        // Earliest-ready queue: a command is ready when its sub-array is
        // free; it starts when both the sub-array and the bus are free.
        let q = (0..queues.len())
            .filter(|&q| next[q] < queues[q].len())
            .min_by(|&a, &b| free_at[a].total_cmp(&free_at[b]))
            .expect("remaining > 0 implies a non-empty queue");
        let start = free_at[q].max(bus_free);
        let latency = queues[q][next[q]];
        bus_free = start + issue_ns;
        free_at[q] = start + latency;
        makespan = makespan.max(free_at[q]);
        next[q] += 1;
        remaining -= 1;
    }
    Schedule {
        makespan_ns: makespan,
        serial_ns,
        effective_parallelism: if makespan > 0.0 { serial_ns / makespan } else { 0.0 },
        commands,
    }
}

/// Builds uniform queues: `subarrays` queues of `per_queue` commands of
/// `latency_ns` each (the hashmap stage's shape).
pub fn uniform_queues(subarrays: usize, per_queue: usize, latency_ns: f64) -> Vec<CommandQueue> {
    vec![vec![latency_ns; per_queue]; subarrays]
}

/// Builds one queue per sub-array from measured `(commands, busy_ns)`
/// totals — the shape returned by
/// [`crate::controller::Controller::subarray_command_totals`] — modeling
/// each sub-array's traffic as `commands` equal-length commands. Feeding
/// the result to [`schedule`] estimates the makespan (and effective
/// parallelism) the recorded traffic would achieve if the sub-arrays ran
/// concurrently under the shared command bus.
pub fn queues_from_totals(totals: &[(u64, f64)]) -> Vec<CommandQueue> {
    totals
        .iter()
        .filter(|&&(commands, _)| commands > 0)
        .map(|&(commands, busy_ns)| vec![busy_ns / commands as f64; commands as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::TimingParams;

    #[test]
    fn single_queue_is_fully_serial() {
        let s = schedule(&uniform_queues(1, 10, 47.0), 1.0);
        assert!((s.makespan_ns - 470.0).abs() < 10.0);
        assert!((s.effective_parallelism - 1.0).abs() < 0.05);
    }

    #[test]
    fn parallelism_scales_until_the_bus_saturates() {
        // AAP ≈ 47 ns, command issue ≈ 2.8 ns (three DDR commands at tCK):
        // at most ~16.8 sub-arrays can be kept busy.
        let t = TimingParams::ddr4_2133();
        let issue = 3.0 * t.t_ck_ns;
        let aap = t.aap_ns();
        let p8 = schedule(&uniform_queues(8, 50, aap), issue).effective_parallelism;
        let p16 = schedule(&uniform_queues(16, 50, aap), issue).effective_parallelism;
        let p64 = schedule(&uniform_queues(64, 50, aap), issue).effective_parallelism;
        assert!((p8 - 8.0).abs() < 0.5, "8 queues: {p8}");
        assert!((p16 - 16.0).abs() < 1.0, "16 queues: {p16}");
        // Beyond the bus limit, adding sub-arrays cannot raise parallelism.
        let cap = aap / issue;
        assert!(p64 < cap + 1.0, "64 queues: {p64} exceeds bus cap {cap}");
        assert!(p64 > cap - 2.0, "64 queues: {p64} far below bus cap {cap}");
    }

    #[test]
    fn bus_cap_justifies_the_perf_model_chain_cap() {
        // The assembly perf model clamps chains at 22 per replica set; the
        // scheduled ground truth for AAP-class commands lands in the same
        // regime (tens, not hundreds).
        let t = TimingParams::ddr4_2133();
        let s = schedule(&uniform_queues(256, 20, t.aap_ns()), 3.0 * t.t_ck_ns);
        assert!(
            s.effective_parallelism > 10.0 && s.effective_parallelism < 25.0,
            "effective parallelism {}",
            s.effective_parallelism
        );
    }

    #[test]
    fn mixed_latencies_schedule_correctly() {
        // One long queue dominates the makespan.
        let mut queues = uniform_queues(4, 2, 10.0);
        queues.push(vec![100.0; 5]);
        let s = schedule(&queues, 0.5);
        assert!(s.makespan_ns >= 500.0);
        assert_eq!(s.commands, 4 * 2 + 5);
    }

    #[test]
    fn empty_input() {
        let s = schedule(&[], 1.0);
        assert_eq!(s.makespan_ns, 0.0);
        assert_eq!(s.commands, 0);
    }

    #[test]
    fn totals_build_average_latency_queues() {
        let queues = queues_from_totals(&[(4, 188.0), (0, 0.0), (2, 20.0)]);
        assert_eq!(queues.len(), 2);
        assert_eq!(queues[0], vec![47.0; 4]);
        assert_eq!(queues[1], vec![10.0; 2]);
        // Two independent sub-arrays overlap under a fast bus.
        let s = schedule(&queues, 0.5);
        assert!(s.effective_parallelism > 1.05);
        assert_eq!(s.commands, 6);
    }
}
