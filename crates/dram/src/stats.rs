//! Command, latency, and energy accounting.
//!
//! The controller records every issued command here. The behavioural
//! performance model in the `pim-assembler` crate turns these counters into
//! execution-time and power estimates (the role of the paper's Matlab
//! simulator, §II-B item 3).

use std::fmt;

use crate::command::DramCommand;

/// Counters for each command class plus accumulated serial latency/energy.
///
/// `serial_ns` is the sum of per-command latencies *as if* every command ran
/// back-to-back in one sub-array; wall-clock estimation across parallel
/// sub-arrays divides by the active parallelism (done by the perf model,
/// which knows the mapping).
///
/// # Examples
///
/// ```
/// use pim_dram::stats::CommandStats;
///
/// let mut s = CommandStats::default();
/// s.record_raw("AAP2", 47.0, 2.3);
/// assert_eq!(s.aap2, 1);
/// assert!(s.serial_ns > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CommandStats {
    /// Host row reads.
    pub reads: u64,
    /// Host row writes.
    pub writes: u64,
    /// Type-1 AAP copies (RowClone).
    pub aap: u64,
    /// Type-2 AAP two-row activations.
    pub aap2: u64,
    /// Type-3 AAP triple-row activations.
    pub aap3: u64,
    /// DPU scalar operations.
    pub dpu: u64,
    /// Sum of command latencies, serially (ns).
    pub serial_ns: f64,
    /// Sum of command energies (nJ).
    pub energy_nj: f64,
}

impl CommandStats {
    /// Records one command with its latency and energy.
    pub fn record(&mut self, cmd: &DramCommand, latency_ns: f64, energy_nj: f64) {
        self.record_raw(cmd.mnemonic(), latency_ns, energy_nj);
    }

    /// Records by mnemonic (for synthetic accounting where no concrete
    /// command value exists, e.g. replicated parallel issues).
    pub fn record_raw(&mut self, mnemonic: &str, latency_ns: f64, energy_nj: f64) {
        match mnemonic {
            "RD" => self.reads += 1,
            "WR" => self.writes += 1,
            "AAP" => self.aap += 1,
            "AAP2" => self.aap2 += 1,
            "AAP3" => self.aap3 += 1,
            "DPU" => self.dpu += 1,
            other => panic!("unknown command mnemonic {other:?}"),
        }
        self.serial_ns += latency_ns;
        self.energy_nj += energy_nj;
    }

    /// Total commands of all classes.
    pub fn total_commands(&self) -> u64 {
        self.reads + self.writes + self.aap + self.aap2 + self.aap3 + self.dpu
    }

    /// Total in-array operations (all AAP shapes, excluding host I/O & DPU).
    pub fn total_aaps(&self) -> u64 {
        self.aap + self.aap2 + self.aap3
    }

    /// Adds another stats block into this one.
    pub fn merge(&mut self, other: &CommandStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.aap += other.aap;
        self.aap2 += other.aap2;
        self.aap3 += other.aap3;
        self.dpu += other.dpu;
        self.serial_ns += other.serial_ns;
        self.energy_nj += other.energy_nj;
    }

    /// Difference `self − baseline` (for scoping a phase of execution).
    ///
    /// # Panics
    ///
    /// Panics if `baseline` has counters larger than `self`.
    pub fn since(&self, baseline: &CommandStats) -> CommandStats {
        CommandStats {
            reads: self.reads - baseline.reads,
            writes: self.writes - baseline.writes,
            aap: self.aap - baseline.aap,
            aap2: self.aap2 - baseline.aap2,
            aap3: self.aap3 - baseline.aap3,
            dpu: self.dpu - baseline.dpu,
            serial_ns: self.serial_ns - baseline.serial_ns,
            energy_nj: self.energy_nj - baseline.energy_nj,
        }
    }
}

impl fmt::Display for CommandStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RD={} WR={} AAP={} AAP2={} AAP3={} DPU={} serial={:.1}us energy={:.1}uJ",
            self.reads,
            self.writes,
            self.aap,
            self.aap2,
            self.aap3,
            self.dpu,
            self.serial_ns / 1000.0,
            self.energy_nj / 1000.0
        )
    }
}

/// Alias retained for discoverability: energy lives inside [`CommandStats`].
pub type EnergyStats = CommandStats;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::RowAddr;

    #[test]
    fn record_classifies_commands() {
        let mut s = CommandStats::default();
        s.record(&DramCommand::Read { src: RowAddr(0) }, 10.0, 1.0);
        s.record(&DramCommand::Aap { src: RowAddr(0), dst: RowAddr(1) }, 47.0, 2.0);
        s.record(&DramCommand::DpuOp, 1.0, 0.1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.aap, 1);
        assert_eq!(s.dpu, 1);
        assert_eq!(s.total_commands(), 3);
        assert!((s.serial_ns - 58.0).abs() < 1e-9);
    }

    #[test]
    fn merge_and_since_are_inverse() {
        let mut a = CommandStats::default();
        a.record_raw("AAP2", 47.0, 2.3);
        let snapshot = a;
        a.record_raw("AAP3", 47.0, 2.6);
        a.record_raw("WR", 30.0, 1.5);
        let delta = a.since(&snapshot);
        assert_eq!(delta.aap3, 1);
        assert_eq!(delta.writes, 1);
        assert_eq!(delta.aap2, 0);
        let mut rebuilt = snapshot;
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, a);
    }

    #[test]
    #[should_panic(expected = "unknown command mnemonic")]
    fn unknown_mnemonic_panics() {
        CommandStats::default().record_raw("XYZ", 1.0, 1.0);
    }

    #[test]
    fn display_mentions_all_counters() {
        let s = CommandStats::default();
        let txt = s.to_string();
        for key in ["RD=", "WR=", "AAP=", "AAP2=", "AAP3=", "DPU="] {
            assert!(txt.contains(key), "missing {key} in {txt}");
        }
    }
}
