//! Addressing types for the DRAM hierarchy.

use std::fmt;

use crate::error::Result;
use crate::geometry::DramGeometry;

/// Identifies one computational sub-array within the memory group.
///
/// Handles are validated against a [`DramGeometry`] at creation time (see
/// [`SubarrayId::new`]) so downstream code can index without re-checking.
///
/// # Examples
///
/// ```
/// use pim_dram::{address::SubarrayId, geometry::DramGeometry};
///
/// let g = DramGeometry::tiny();
/// let id = SubarrayId::new(&g, 0, 1, 1, 0)?;
/// assert_eq!(id.bank, 1);
/// # Ok::<(), pim_dram::DramError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubarrayId {
    /// Chip index.
    pub chip: usize,
    /// Bank index within the chip.
    pub bank: usize,
    /// MAT index within the bank.
    pub mat: usize,
    /// Sub-array index within the MAT.
    pub subarray: usize,
}

impl SubarrayId {
    /// Creates a validated sub-array handle.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DramError::AddressOutOfRange`] if any coordinate
    /// exceeds the geometry.
    pub fn new(
        geometry: &DramGeometry,
        chip: usize,
        bank: usize,
        mat: usize,
        subarray: usize,
    ) -> Result<Self> {
        geometry.check_coords(chip, bank, mat, subarray)?;
        Ok(SubarrayId { chip, bank, mat, subarray })
    }

    /// Flattens the handle to a linear index in row-major
    /// (chip, bank, mat, subarray) order.
    pub fn linear_index(&self, geometry: &DramGeometry) -> usize {
        ((self.chip * geometry.banks_per_chip + self.bank) * geometry.mats_per_bank + self.mat)
            * geometry.subarrays_per_mat
            + self.subarray
    }

    /// Reconstructs a handle from a linear index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= geometry.total_subarrays()`.
    pub fn from_linear_index(geometry: &DramGeometry, index: usize) -> Self {
        assert!(index < geometry.total_subarrays(), "linear sub-array index out of range");
        let subarray = index % geometry.subarrays_per_mat;
        let rest = index / geometry.subarrays_per_mat;
        let mat = rest % geometry.mats_per_bank;
        let rest = rest / geometry.mats_per_bank;
        let bank = rest % geometry.banks_per_chip;
        let chip = rest / geometry.banks_per_chip;
        SubarrayId { chip, bank, mat, subarray }
    }
}

impl fmt::Display for SubarrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}b{}m{}s{}", self.chip, self.bank, self.mat, self.subarray)
    }
}

/// A row index within a sub-array, wrapped for type safety against column or
/// linear indices.
///
/// # Examples
///
/// ```
/// use pim_dram::address::RowAddr;
///
/// let r = RowAddr(42);
/// assert_eq!(r.0, 42);
/// assert_eq!(r.to_string(), "r42");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RowAddr(pub usize);

impl fmt::Display for RowAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<usize> for RowAddr {
    fn from(v: usize) -> Self {
        RowAddr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_roundtrip() {
        let g = DramGeometry::tiny();
        for i in 0..g.total_subarrays() {
            let id = SubarrayId::from_linear_index(&g, i);
            assert_eq!(id.linear_index(&g), i);
        }
    }

    #[test]
    fn new_validates() {
        let g = DramGeometry::tiny();
        assert!(SubarrayId::new(&g, 0, 0, 0, 0).is_ok());
        assert!(SubarrayId::new(&g, 1, 0, 0, 0).is_err());
        assert!(SubarrayId::new(&g, 0, 0, 0, 2).is_err());
    }

    #[test]
    fn display_is_compact() {
        let id = SubarrayId { chip: 0, bank: 3, mat: 1, subarray: 7 };
        assert_eq!(id.to_string(), "c0b3m1s7");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_linear_index_bounds() {
        let g = DramGeometry::tiny();
        let _ = SubarrayId::from_linear_index(&g, g.total_subarrays());
    }
}
