//! DRAM timing parameters and derived command latencies.
//!
//! All latencies are expressed in nanoseconds (`f64`). The PIM primitives of
//! the paper are built from `ACTIVATE-ACTIVATE-PRECHARGE` (AAP) sequences, so
//! the key derived quantity is [`TimingParams::aap_ns`]: the back-to-back
//! issue period of one AAP, which following RowClone/Ambit equals
//! `tRAS + tRP` (the second ACTIVATE overlaps the first row's restore).

/// Timing parameters of a DDR-class DRAM device.
///
/// # Examples
///
/// ```
/// use pim_dram::timing::TimingParams;
///
/// let t = TimingParams::ddr4_2133();
/// assert!(t.aap_ns() > t.t_ras_ns);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingParams {
    /// Clock period in nanoseconds.
    pub t_ck_ns: f64,
    /// ACTIVATE → column command delay.
    pub t_rcd_ns: f64,
    /// ACTIVATE → PRECHARGE minimum (row restore time).
    pub t_ras_ns: f64,
    /// PRECHARGE period.
    pub t_rp_ns: f64,
    /// Column-to-column delay.
    pub t_ccd_ns: f64,
    /// Write recovery time.
    pub t_wr_ns: f64,
    /// CAS latency.
    pub t_cl_ns: f64,
}

impl TimingParams {
    /// DDR4-2133 timings (the faster of the two channels the paper's CPU
    /// baseline uses).
    pub fn ddr4_2133() -> Self {
        TimingParams {
            t_ck_ns: 0.937,
            t_rcd_ns: 14.06,
            t_ras_ns: 33.0,
            t_rp_ns: 14.06,
            t_ccd_ns: 3.75,
            t_wr_ns: 15.0,
            t_cl_ns: 14.06,
        }
    }

    /// SOT-MRAM sub-array timings for the PANDA-style backend.
    ///
    /// Magnetic tunnel junctions are sensed resistively: there is no
    /// charge restore, so the "row open" interval is a word-line settle +
    /// sense window (~9 ns) and the precharge equivalent is the bit-line
    /// equalization (~4 ns), giving an activation period
    /// ([`TimingParams::aap_ns`]) of 13 ns versus 47 ns on DDR4-2133.
    /// Writes pay the SOT switching time via the longer `t_wr_ns`.
    pub fn sot_mram() -> Self {
        TimingParams {
            t_ck_ns: 0.937,
            t_rcd_ns: 5.0,
            t_ras_ns: 9.0,
            t_rp_ns: 4.0,
            t_ccd_ns: 3.75,
            t_wr_ns: 10.0,
            t_cl_ns: 5.0,
        }
    }

    /// DDR4-1866 timings.
    pub fn ddr4_1866() -> Self {
        TimingParams {
            t_ck_ns: 1.071,
            t_rcd_ns: 13.92,
            t_ras_ns: 34.0,
            t_rp_ns: 13.92,
            t_ccd_ns: 4.28,
            t_wr_ns: 15.0,
            t_cl_ns: 13.92,
        }
    }

    /// Latency of one AAP (`ACTIVATE-ACTIVATE-PRECHARGE`) command sequence.
    ///
    /// Per RowClone-FPM and Ambit, two back-to-back activations in the same
    /// sub-array can be issued such that the full sequence completes in
    /// `tRAS + tRP`: the second ACTIVATE is issued while the first row is
    /// still open and the single PRECHARGE closes both.
    pub fn aap_ns(&self) -> f64 {
        self.t_ras_ns + self.t_rp_ns
    }

    /// Latency of a plain `ACTIVATE … PRECHARGE` (row open + close), used
    /// for ordinary reads/writes of one row through the row buffer.
    pub fn ap_ns(&self) -> f64 {
        self.t_ras_ns + self.t_rp_ns
    }

    /// Latency of reading or writing one burst of `bits` through the global
    /// row buffer once the row is open (column accesses at `tCCD` pace,
    /// 64 bits per column command on a x64 interface).
    pub fn burst_ns(&self, bits: usize) -> f64 {
        let bursts = bits.div_ceil(64);
        bursts as f64 * self.t_ccd_ns
    }

    /// Full row read latency: open, stream `bits`, close.
    pub fn row_read_ns(&self, bits: usize) -> f64 {
        self.t_rcd_ns + self.t_cl_ns + self.burst_ns(bits) + self.t_rp_ns
    }

    /// Full row write latency: open, stream `bits`, write-recover, close.
    pub fn row_write_ns(&self, bits: usize) -> f64 {
        self.t_rcd_ns + self.burst_ns(bits) + self.t_wr_ns + self.t_rp_ns
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::ddr4_2133()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aap_is_ras_plus_rp() {
        let t = TimingParams::ddr4_2133();
        assert!((t.aap_ns() - (33.0 + 14.06)).abs() < 1e-9);
    }

    #[test]
    fn burst_scales_with_bits() {
        let t = TimingParams::ddr4_2133();
        assert!(t.burst_ns(256) > t.burst_ns(64));
        assert_eq!(t.burst_ns(0), 0.0);
        // 256 bits = 4 column commands.
        assert!((t.burst_ns(256) - 4.0 * t.t_ccd_ns).abs() < 1e-9);
    }

    #[test]
    fn row_ops_include_open_close() {
        let t = TimingParams::ddr4_1866();
        assert!(t.row_read_ns(256) > t.t_rcd_ns + t.t_rp_ns);
        assert!(t.row_write_ns(256) > t.t_rcd_ns + t.t_rp_ns);
    }

    #[test]
    fn presets_differ() {
        assert_ne!(TimingParams::ddr4_2133(), TimingParams::ddr4_1866());
    }
}
