//! The chip → bank → MAT → sub-array hierarchy (Fig. 1a).
//!
//! Sub-arrays are materialized lazily: the paper-scale memory group holds
//! tens of thousands of 32 KiB sub-arrays, but any one workload touches only
//! the slice the mapper assigned to it.

use std::collections::HashMap;

use crate::address::SubarrayId;
use crate::geometry::DramGeometry;
use crate::subarray::Subarray;

/// The whole memory group: lazily-allocated sub-arrays addressed by
/// [`SubarrayId`].
///
/// # Examples
///
/// ```
/// use pim_dram::{hierarchy::MemoryGroup, geometry::DramGeometry, address::SubarrayId};
///
/// let g = DramGeometry::tiny();
/// let mut mem = MemoryGroup::new(g);
/// let id = SubarrayId::new(&g, 0, 0, 0, 0)?;
/// assert_eq!(mem.touched_subarrays(), 0);
/// mem.subarray_mut(id); // first touch allocates
/// assert_eq!(mem.touched_subarrays(), 1);
/// # Ok::<(), pim_dram::DramError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MemoryGroup {
    geometry: DramGeometry,
    subarrays: HashMap<SubarrayId, Subarray>,
}

impl MemoryGroup {
    /// Creates an empty (all-zero) memory group.
    pub fn new(geometry: DramGeometry) -> Self {
        MemoryGroup { geometry, subarrays: HashMap::new() }
    }

    /// The configured geometry.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// Mutable access to a sub-array, allocating it on first touch.
    pub fn subarray_mut(&mut self, id: SubarrayId) -> &mut Subarray {
        let geometry = self.geometry;
        self.subarrays.entry(id).or_insert_with(|| Subarray::new(geometry))
    }

    /// Shared access to a sub-array, if it has been touched.
    pub fn subarray(&self, id: SubarrayId) -> Option<&Subarray> {
        self.subarrays.get(&id)
    }

    /// Number of sub-arrays materialized so far.
    pub fn touched_subarrays(&self) -> usize {
        self.subarrays.len()
    }

    /// Iterates over the touched sub-arrays.
    pub fn iter(&self) -> impl Iterator<Item = (&SubarrayId, &Subarray)> {
        self.subarrays.iter()
    }

    /// Releases all materialized sub-arrays (content reset to zero on next
    /// touch).
    pub fn clear(&mut self) {
        self.subarrays.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::RowAddr;
    use crate::bitrow::BitRow;

    #[test]
    fn lazy_allocation() {
        let g = DramGeometry::tiny();
        let mut mem = MemoryGroup::new(g);
        assert_eq!(mem.touched_subarrays(), 0);
        let a = SubarrayId::new(&g, 0, 0, 0, 0).unwrap();
        let b = SubarrayId::new(&g, 0, 1, 1, 1).unwrap();
        mem.subarray_mut(a);
        mem.subarray_mut(b);
        mem.subarray_mut(a); // re-touch does not duplicate
        assert_eq!(mem.touched_subarrays(), 2);
    }

    #[test]
    fn untouched_reads_are_none() {
        let g = DramGeometry::tiny();
        let mem = MemoryGroup::new(g);
        let a = SubarrayId::new(&g, 0, 0, 0, 0).unwrap();
        assert!(mem.subarray(a).is_none());
    }

    #[test]
    fn content_persists_across_touches() {
        let g = DramGeometry::tiny();
        let mut mem = MemoryGroup::new(g);
        let id = SubarrayId::new(&g, 0, 1, 0, 1).unwrap();
        mem.subarray_mut(id).write(RowAddr(7), &BitRow::ones(g.cols)).unwrap();
        assert!(mem.subarray(id).unwrap().read(RowAddr(7)).unwrap().all_ones());
        mem.clear();
        assert_eq!(mem.touched_subarrays(), 0);
    }
}
