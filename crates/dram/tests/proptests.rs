//! Property-based tests: the in-memory primitives executed through the full
//! controller path must agree with plain software bitwise logic for
//! arbitrary row contents.

use proptest::prelude::*;

use pim_dram::address::RowAddr;
use pim_dram::bitrow::BitRow;
use pim_dram::controller::Controller;
use pim_dram::geometry::DramGeometry;
use pim_dram::sense_amp::SaMode;
use pim_dram::subarray::Subarray;

fn bits(len: usize) -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), len)
}

fn setup() -> (Controller, pim_dram::SubarrayId) {
    let c = Controller::new(DramGeometry::tiny());
    let id = c.subarray_handle(0, 0, 0, 0).unwrap();
    (c, id)
}

proptest! {
    #[test]
    fn pim_xnor_matches_software(a in bits(64), b in bits(64)) {
        let (mut c, id) = setup();
        let ra = BitRow::from_bits(a);
        let rb = BitRow::from_bits(b);
        c.write_row(id, 1, &ra).unwrap();
        c.write_row(id, 2, &rb).unwrap();
        c.aap_copy(id, 1, c.compute_row(0)).unwrap();
        c.aap_copy(id, 2, c.compute_row(1)).unwrap();
        let out = c.aap2_xnor(id, [c.compute_row(0), c.compute_row(1)], 5).unwrap();
        prop_assert_eq!(out, ra.xnor(&rb));
    }

    #[test]
    fn pim_nor_nand_xor_match_software(a in bits(64), b in bits(64)) {
        for mode in [SaMode::Nor, SaMode::Nand, SaMode::Xor] {
            let (mut c, id) = setup();
            let ra = BitRow::from_bits(a.clone());
            let rb = BitRow::from_bits(b.clone());
            c.write_row(id, 1, &ra).unwrap();
            c.write_row(id, 2, &rb).unwrap();
            c.aap_copy(id, 1, c.compute_row(0)).unwrap();
            c.aap_copy(id, 2, c.compute_row(1)).unwrap();
            let out = c.aap2(id, mode, [c.compute_row(0), c.compute_row(1)], 5).unwrap();
            let expect = match mode {
                SaMode::Nor => ra.or(&rb).not(),
                SaMode::Nand => ra.and(&rb).not(),
                SaMode::Xor => ra.xor(&rb),
                _ => unreachable!(),
            };
            prop_assert_eq!(out, expect);
        }
    }

    #[test]
    fn pim_tra_matches_majority(a in bits(64), b in bits(64), d in bits(64)) {
        let (mut c, id) = setup();
        let (ra, rb, rd) = (BitRow::from_bits(a), BitRow::from_bits(b), BitRow::from_bits(d));
        c.write_row(id, 1, &ra).unwrap();
        c.write_row(id, 2, &rb).unwrap();
        c.write_row(id, 3, &rd).unwrap();
        for (row, x) in [(1usize, 0usize), (2, 1), (3, 2)] {
            c.aap_copy(id, row, c.compute_row(x)).unwrap();
        }
        let out = c
            .aap3_carry(id, [c.compute_row(0), c.compute_row(1), c.compute_row(2)], 9)
            .unwrap();
        prop_assert_eq!(out, BitRow::maj3(&ra, &rb, &rd));
    }

    #[test]
    fn full_adder_slice_is_exact(a in bits(64), b in bits(64), cin in bits(64)) {
        // sum = a ^ b ^ cin with cin latched; carry = MAJ(a, b, cin).
        let (mut c, id) = setup();
        let (ra, rb, rc) = (BitRow::from_bits(a), BitRow::from_bits(b), BitRow::from_bits(cin));
        c.write_row(id, 1, &ra).unwrap();
        c.write_row(id, 2, &rb).unwrap();
        c.write_row(id, 3, &rc).unwrap();
        // Latch cin by TRA(cin, cin-copy …) — hardware latches via the carry
        // path, so emulate the controller's sequencing: TRA over
        // (cin, zeros, cin) majors to cin and latches it.
        let zeros = BitRow::zeros(ra.len());
        c.write_row(id, 4, &zeros).unwrap();
        c.aap_copy(id, 3, c.compute_row(0)).unwrap();
        c.aap_copy(id, 4, c.compute_row(1)).unwrap();
        c.aap_copy(id, 3, c.compute_row(2)).unwrap();
        let latched = c
            .aap3_carry(id, [c.compute_row(0), c.compute_row(1), c.compute_row(2)], 10)
            .unwrap();
        prop_assert_eq!(&latched, &rc); // MAJ(cin, 0, cin) = cin
        // Sum cycle.
        c.aap_copy(id, 1, c.compute_row(0)).unwrap();
        c.aap_copy(id, 2, c.compute_row(1)).unwrap();
        let sum = c.aap2_sum(id, [c.compute_row(0), c.compute_row(1)], 11).unwrap();
        prop_assert_eq!(sum, ra.xor(&rb).xor(&rc));
        // Carry cycle.
        c.aap_copy(id, 1, c.compute_row(0)).unwrap();
        c.aap_copy(id, 2, c.compute_row(1)).unwrap();
        c.aap_copy(id, 3, c.compute_row(2)).unwrap();
        let carry = c
            .aap3_carry(id, [c.compute_row(0), c.compute_row(1), c.compute_row(2)], 12)
            .unwrap();
        prop_assert_eq!(carry, BitRow::maj3(&ra, &rb, &rc));
    }

    #[test]
    fn bitrow_u64_roundtrip(v in any::<u64>(), len in 1usize..=64) {
        let masked = if len == 64 { v } else { v & ((1u64 << len) - 1) };
        prop_assert_eq!(BitRow::from_u64(v, len).to_u64(), masked);
    }

    #[test]
    fn bitrow_splice_extract_roundtrip(payload in bits(16), offset in 0usize..48) {
        let mut row = BitRow::zeros(64);
        let p = BitRow::from_bits(payload);
        row.splice(offset, &p);
        prop_assert_eq!(row.extract(offset, 16), p);
    }

    #[test]
    fn xnor_is_involutive_complement(a in bits(64), b in bits(64)) {
        let (ra, rb) = (BitRow::from_bits(a), BitRow::from_bits(b));
        // xnor(a, b) == not(xor(a, b)) and xnor(a, a) == ones.
        prop_assert_eq!(ra.xnor(&rb), ra.xor(&rb).not());
        prop_assert!(ra.xnor(&ra).all_ones());
    }

    #[test]
    fn schedule_lower_bounds_hold(
        queues in proptest::collection::vec(proptest::collection::vec(1.0f64..100.0, 1..8), 1..12),
        issue in 0.5f64..5.0,
    ) {
        let s = pim_dram::schedule::schedule(&queues, issue);
        // Makespan can never beat (1) the longest single queue, (2) the
        // serial time divided by the queue count, (3) the bus issue time.
        let longest: f64 = queues.iter().map(|q| q.iter().sum::<f64>()).fold(0.0, f64::max);
        prop_assert!(s.makespan_ns + 1e-9 >= longest);
        prop_assert!(s.makespan_ns + 1e-9 >= s.serial_ns / queues.len() as f64);
        prop_assert!(s.makespan_ns + 1e-9 >= s.commands as f64 * issue - issue);
        // And it is no worse than fully serial execution.
        prop_assert!(s.makespan_ns <= s.serial_ns + s.commands as f64 * issue + 1e-9);
    }

    #[test]
    fn copy_preserves_content(a in bits(64), src in 0usize..16, dst in 16usize..24) {
        let (mut c, id) = setup();
        let ra = BitRow::from_bits(a);
        c.write_row(id, src, &ra).unwrap();
        c.aap_copy(id, src, dst).unwrap();
        prop_assert_eq!(c.peek_row(id, dst).unwrap(), ra);
    }

    // ── Ledger merge algebra — what parallel dispatch relies on ────────

    #[test]
    fn ledger_merge_is_commutative(a in charges(), b in charges()) {
        let costs = paper_costs();
        let (la, lb) = (ledger_of(&a, &costs), ledger_of(&b, &costs));
        let mut ab = la;
        ab.merge(&lb);
        let mut ba = lb;
        ba.merge(&la);
        prop_assert_eq!(ab, ba);
        // The derived f64 stats views are bitwise identical too.
        prop_assert_eq!(ab.to_stats(), ba.to_stats());
    }

    #[test]
    fn ledger_merge_is_associative(a in charges(), b in charges(), c in charges()) {
        let costs = paper_costs();
        let (la, lb, lc) = (ledger_of(&a, &costs), ledger_of(&b, &costs), ledger_of(&c, &costs));
        let mut assoc_left = la;           // (a ⊕ b) ⊕ c
        assoc_left.merge(&lb);
        assoc_left.merge(&lc);
        let mut bc = lb;                   // a ⊕ (b ⊕ c)
        bc.merge(&lc);
        let mut assoc_right = la;
        assoc_right.merge(&bc);
        prop_assert_eq!(assoc_left, assoc_right);
        prop_assert_eq!(assoc_left.to_stats(), assoc_right.to_stats());
    }

    #[test]
    fn ledger_since_inverts_merge(a in charges(), b in charges()) {
        let costs = paper_costs();
        let (la, lb) = (ledger_of(&a, &costs), ledger_of(&b, &costs));
        let mut merged = la;
        merged.merge(&lb);
        prop_assert_eq!(merged.since(&la), lb);
        prop_assert_eq!(merged.since(&lb), la);
        prop_assert!(merged.since(&merged).is_empty());
    }

    // ── In-place kernels and scratch-row activations (PR 3 hot path) ───

    #[test]
    fn in_place_bitrow_kernels_match_allocating(a in bits(96), b in bits(96), d in bits(96)) {
        // 96 bits spans a word boundary with a masked tail — the case the
        // word-at-a-time kernels must get right.
        let (ra, rb, rd) = (BitRow::from_bits(a), BitRow::from_bits(b), BitRow::from_bits(d));
        let mut out = BitRow::ones(96); // stale content must be fully overwritten
        out.nor_into(&ra, &rb);
        prop_assert_eq!(&out, &ra.or(&rb).not());
        out.nand_into(&ra, &rb);
        prop_assert_eq!(&out, &ra.and(&rb).not());
        out.xor_into(&ra, &rb);
        prop_assert_eq!(&out, &ra.xor(&rb));
        out.xnor_into(&ra, &rb);
        prop_assert_eq!(&out, &ra.xnor(&rb));
        out.xor3_into(&ra, &rb, &rd);
        prop_assert_eq!(&out, &ra.xor(&rb).xor(&rd));
        out.maj3_into(&ra, &rb, &rd);
        prop_assert_eq!(&out, &BitRow::maj3(&ra, &rb, &rd));
    }

    #[test]
    fn scratch_row_apply_leaves_identical_subarray_state(
        a in bits(DramGeometry::tiny().cols),
        b in bits(DramGeometry::tiny().cols),
        d in bits(DramGeometry::tiny().cols),
        mode_ix in 0usize..5,
    ) {
        // The allocating op2/op3_carry and their scratch-row _apply forms
        // must leave every row, and the SA latch, bit-for-bit identical.
        let g = DramGeometry::tiny();
        let mode =
            [SaMode::Nor, SaMode::Nand, SaMode::Xor, SaMode::Xnor, SaMode::CarrySum][mode_ix];
        let mut alloc = Subarray::new(g);
        let mut apply = Subarray::new(g);
        for s in [&mut alloc, &mut apply] {
            s.write(RowAddr(1), &BitRow::from_bits(a.clone())).unwrap();
            s.write(RowAddr(2), &BitRow::from_bits(b.clone())).unwrap();
            s.write(RowAddr(3), &BitRow::from_bits(d.clone())).unwrap();
            for (row, x) in [(1usize, 0usize), (2, 1), (3, 2)] {
                s.copy(RowAddr(row), RowAddr(g.compute_row(x))).unwrap();
            }
        }
        let x: Vec<RowAddr> = (0..3).map(|i| RowAddr(g.compute_row(i))).collect();

        let sensed = alloc.op2(mode, [x[0], x[1]], RowAddr(5)).unwrap();
        apply.op2_apply(mode, [x[0], x[1]], RowAddr(5)).unwrap();
        prop_assert_eq!(&apply.read(RowAddr(5)).unwrap(), &sensed);

        // Re-stage the (identically destroyed) operands and run the TRA.
        for s in [&mut alloc, &mut apply] {
            for (row, x) in [(1usize, 0usize), (2, 1), (3, 2)] {
                s.copy(RowAddr(row), RowAddr(g.compute_row(x))).unwrap();
            }
        }
        let carried = alloc.op3_carry([x[0], x[1], x[2]], RowAddr(6)).unwrap();
        apply.op3_carry_apply([x[0], x[1], x[2]], RowAddr(6)).unwrap();
        prop_assert_eq!(&apply.read(RowAddr(6)).unwrap(), &carried);

        for r in 0..g.rows {
            prop_assert_eq!(
                alloc.read(RowAddr(r)).unwrap(),
                apply.read(RowAddr(r)).unwrap(),
                "row {} diverged", r
            );
        }
        prop_assert_eq!(alloc.latch(), apply.latch());
    }

    #[test]
    fn stats_merge_is_order_independent(a in charges(), b in charges()) {
        // The f64 CommandStats::merge the pipeline uses for stage deltas
        // commutes exactly when both operands derive from integer ledgers.
        let costs = paper_costs();
        let (sa, sb) = (ledger_of(&a, &costs).to_stats(), ledger_of(&b, &costs).to_stats());
        let mut ab = sa;
        ab.merge(&sb);
        let mut ba = sb;
        ba.merge(&sa);
        prop_assert_eq!(ab.total_commands(), ba.total_commands());
        prop_assert_eq!(ab.serial_ns.to_bits(), ba.serial_ns.to_bits());
        prop_assert_eq!(ab.energy_nj.to_bits(), ba.energy_nj.to_bits());
    }
}

use pim_dram::ledger::{CommandCosts, EnergyLedger, COMMAND_CLASSES};

/// Per-class command counts, as a fixed-width vector indexed like
/// [`COMMAND_CLASSES`].
fn charges() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..10_000, COMMAND_CLASSES.len())
}

fn paper_costs() -> CommandCosts {
    CommandCosts::new(
        &pim_dram::timing::TimingParams::ddr4_2133(),
        &pim_dram::energy::EnergyParams::ddr4_45nm(),
        256,
    )
}

fn ledger_of(counts: &[u64], costs: &CommandCosts) -> EnergyLedger {
    let mut ledger = EnergyLedger::default();
    for (&class, &count) in COMMAND_CLASSES.iter().zip(counts) {
        ledger.charge_many(class, costs, count);
    }
    ledger
}
