//! Minimal dependency-free argument parsing for `pim-asm`.

use std::collections::HashMap;

/// Parsed command line: subcommand, positional arguments, `--key value`
/// options, and `--flag` switches.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// Remaining positional arguments.
    pub positional: Vec<String>,
    /// `--key value` options.
    pub options: HashMap<String, String>,
    /// Bare `--flag` switches.
    pub flags: Vec<String>,
}

/// Option keys that take a value (everything else starting with `--` is a
/// switch).
const VALUE_KEYS: [&str; 28] = [
    "k",
    "opt-level",
    "backend",
    "min-count",
    "coverage",
    "seed",
    "output",
    "pd",
    "simplify",
    "subarrays",
    "workers",
    "faults",
    "genome-len",
    "iters",
    "out",
    "baseline",
    "metrics-out",
    "trace-out",
    "metrics",
    "kernel",
    "cols",
    "slots",
    "stage",
    "read-len",
    "error-rate",
    "checkpoint-dir",
    "chunk-reads",
    "resume",
];

impl ParsedArgs {
    /// Parses an argument vector (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = ParsedArgs::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if VALUE_KEYS.contains(&key) {
                    if let Some(value) = iter.next() {
                        out.options.insert(key.to_string(), value);
                    }
                } else {
                    out.flags.push(key.to_string());
                }
            } else if out.command.is_empty() {
                out.command = arg;
            } else {
                out.positional.push(arg);
            }
        }
        out
    }

    /// A numeric option with a default.
    ///
    /// # Panics
    ///
    /// Panics with a readable message when the value does not parse.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.options.get(key) {
            Some(v) => v.parse().unwrap_or_else(|_| panic!("--{key} expects a number, got {v:?}")),
            None => default,
        }
    }

    /// A string option.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Whether a switch was passed.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> ParsedArgs {
        ParsedArgs::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn subcommand_and_positionals() {
        let a = parse("assemble reads.fasta");
        assert_eq!(a.command, "assemble");
        assert_eq!(a.positional, vec!["reads.fasta"]);
    }

    #[test]
    fn options_and_flags() {
        let a = parse("assemble in.fa --k 21 --min-count 2 --correct --output out.fa");
        assert_eq!(a.get_num("k", 0usize), 21);
        assert_eq!(a.get_num("min-count", 1u64), 2);
        assert!(a.has_flag("correct"));
        assert_eq!(a.get_str("output"), Some("out.fa"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse("assemble in.fa");
        assert_eq!(a.get_num("k", 17usize), 17);
        assert!(!a.has_flag("correct"));
    }

    #[test]
    #[should_panic(expected = "expects a number")]
    fn bad_number_panics() {
        parse("assemble --k banana").get_num::<usize>("k", 0);
    }
}
