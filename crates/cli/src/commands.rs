//! Subcommand implementations.

use std::error::Error;
use std::fs::File;
use std::io::BufReader;
use std::path::Path;

use pim_assembler::{PimAssembler, PimAssemblerConfig};
use pim_genome::correction::ReadCorrector;
use pim_genome::fasta::{read_fasta, write_fasta, FastaRecord};
use pim_genome::fastq::read_fastq;
use pim_genome::reads::{Read, ReadSimulator};
use pim_platforms::throughput::{ThroughputReport, PAPER_VECTOR_BITS};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::args::ParsedArgs;

/// Help text.
pub const USAGE: &str = "\
pim-asm — genome assembly on the simulated PIM-Assembler platform

USAGE:
  pim-asm assemble <reads.fasta|.fastq> [options]   assemble reads into contigs
  pim-asm simulate <genome.fasta> [options]         sample synthetic reads
  pim-asm stats <contigs.fasta>                     N50/N90/L50 and length table
  pim-asm throughput                                Fig. 3b bulk-op throughput table
  pim-asm map [options]                             map simulated reads on the platform
  pim-asm verify [options]                          differential + fault verification suite
  pim-asm bench [options]                           hot-path timing harness (BENCH_*.json)
  pim-asm ir --kernel NAME [options]                dump a kernel's IR and lowering
  pim-asm help                                      this text

ASSEMBLE OPTIONS:
  --k N            k-mer length (default 17, max 32)
  --min-count N    drop k-mers seen fewer than N times (default 1)
  --simplify N     clip tips/pop bubbles up to N edges (default off)
  --correct        spectral read error correction before assembly
  --pd N           parallelism degree (default 2)
  --subarrays N    hash-partition sub-arrays (default 32)
  --workers N      host threads for the parallel dispatcher (default 1;
                   results are identical for any value)
  --chunk-reads N  stream the input N reads at a time instead of loading
                   it whole (results are byte-identical; memory is
                   bounded by the chunk size)
  --checkpoint-dir D  persist stage checkpoints into directory D after
                   every chunk (implies streaming; D must be empty
                   unless --force is passed)
  --resume D       resume an interrupted checkpointed run from D; pass
                   the same input file (already-ingested reads are
                   skipped without charging)
  --force          allow --checkpoint-dir to reuse a non-empty directory
  --output PATH    write contigs FASTA (default stdout summary only)
  --report         print the hardware performance report
  --metrics-out P  write the pim-obsv metrics snapshot JSON to P
  --trace-out P    write Chrome trace_event JSON to P (chrome://tracing)

STATS OPTIONS:
  --metrics FILE   print a pim-obsv metrics snapshot (from assemble
                   --metrics-out) instead of contig stats

SIMULATE OPTIONS:
  --coverage X     mean coverage (default 25)
  --seed N         RNG seed (default 42)
  --output PATH    write reads FASTA (default reads.fasta)

MAP OPTIONS:
  --genome-len N   synthetic reference length (default 300)
  --read-len N     simulated read length (default 32, max cols/2)
  --coverage X     read coverage depth (default 4)
  --error-rate X   per-base substitution error rate (default 0.02;
                   errors route survivors through the DP refiner)
  --seed N         RNG seed for the genome + read simulation (default 42)
  --backend NAME   lowering backend for the mapping kernels:
                   pim-assembler (default), ambit-tra, panda-mram
  --opt-level N    IR optimization level: 0 (default) or 2
  --workers N      worker threads for the dispatcher (default 0 = serial;
                   results are identical for any value)
  --faults X       sense-amp flip rate to inject (default none)

VERIFY OPTIONS:
  --stage NAME     verify one workload: `mapping` runs the read-mapping
                   differential + fault suite; `resume` pins streamed /
                   checkpointed / resumed byte-identity over the
                   worker x opt-level matrix
  --k N            k-mer length driven through the stages (default 9)
  --min-count N    graph-stage k-mer count threshold (default 1)
  --genome-len N   synthetic genome length per scenario (default 400)
  --seed N         base RNG seed (default 42)
  --faults LIST    comma-separated sense-amp flip rates to campaign over
                   (default 1e-4; pass `none` to skip fault injection)
  --backend NAME   run the cross-backend differential suite instead:
                   pim-assembler, ambit-tra, panda-mram, or `all` to
                   compare every backend's command mix in one run
                   (with --stage mapping: which backends to verify)
  --opt-level N    IR optimization level for the backend suite's stage
                   kernels: 0 (default) or 2; answers must be identical

BENCH OPTIONS:
  --iters N        micro-bench loop iterations (default 100000)
  --genome-len N   end-to-end dataset genome length (default 3000)
  --backend NAME   substrate to drive the micro-benches on: pim-assembler
                   (default), ambit-tra, panda-mram; non-default backends
                   skip the end-to-end pipeline runs
  --json           print the JSON artifact to stdout
  --out PATH       write the JSON artifact to PATH (refuses to overwrite
                   an existing file unless --force is passed)
  --force          allow --out to replace an existing file
  --baseline PATH  previous BENCH_*.json to compute speedups against
  --opt-level N    IR optimization level the kernels compile at: 0
                   (default, byte-identical streams) or 2 (bounded
                   sequence search; shorter streams where provably equal)

IR OPTIONS:
  --kernel NAME    canonical kernel to dump (xnor, full-adder)
  --backend NAME   lowering backend: pim-assembler (default), ambit-tra,
                   panda-mram
  --cols N         row width in bits to lower for (default 256)
  --slots N        compute rows available to the allocator (default 8;
                   shrink to watch spill-to-copy engage)
  --opt-level N    0 dumps the canonical lowering, 2 the optimizer's pick
";

type CliResult = Result<(), Box<dyn Error>>;

/// Resolves a `--backend` value, naming the valid set on failure.
fn parse_backend(name: &str) -> Result<pim_assembler::ir::BackendKind, Box<dyn Error>> {
    use pim_assembler::ir::BackendKind;
    BackendKind::parse(name).ok_or_else(|| {
        let known: Vec<&str> = BackendKind::ALL.iter().map(|b| b.name()).collect();
        format!("unknown backend {name:?} (one of: {})", known.join(", ")).into()
    })
}

/// Resolves a `--opt-level` value (default `O0`).
fn parse_opt_level(args: &ParsedArgs) -> Result<pim_assembler::ir::OptLevel, Box<dyn Error>> {
    use pim_assembler::ir::OptLevel;
    match args.get_str("opt-level") {
        None => Ok(OptLevel::O0),
        Some(v) => OptLevel::parse(v)
            .ok_or_else(|| format!("unknown opt level {v:?} (one of: 0, 2)").into()),
    }
}

/// Streams reads from a FASTA/FASTQ file into a running
/// [`pim_assembler::Session`], `chunk` reads at a time, holding at most
/// one chunk in memory.
fn feed_session_from_file(
    session: &mut pim_assembler::Session<'_>,
    path: &Path,
    chunk: usize,
) -> Result<u64, Box<dyn Error>> {
    use pim_genome::fasta::fasta_records;
    use pim_genome::fastq::fastq_records;
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    let file = BufReader::new(File::open(path)?);
    let seqs: Box<dyn Iterator<Item = Result<pim_genome::DnaSequence, Box<dyn Error>>>> = match ext
    {
        "fastq" | "fq" => {
            Box::new(fastq_records(file).map(|r| r.map(|rec| rec.seq).map_err(Into::into)))
        }
        _ => Box::new(fasta_records(file).map(|r| r.map(|rec| rec.seq).map_err(Into::into))),
    };
    let mut buffer: Vec<Read> = Vec::with_capacity(chunk);
    let mut total = 0u64;
    for (id, seq) in seqs.enumerate() {
        buffer.push(Read { id, seq: seq?, origin: 0 });
        total += 1;
        if buffer.len() == chunk {
            session.feed(&buffer)?;
            buffer.clear();
        }
    }
    if !buffer.is_empty() {
        session.feed(&buffer)?;
    }
    Ok(total)
}

/// Default streaming chunk when `--resume`/`--checkpoint-dir` is used
/// without an explicit `--chunk-reads`.
const DEFAULT_CHUNK_READS: usize = 4096;

/// `pim-asm assemble`.
pub fn assemble(args: &ParsedArgs) -> CliResult {
    use pim_assembler::checkpoint::prepare_dir;
    use pim_assembler::Session;
    let input = args.positional.first().ok_or("assemble needs an input reads file")?;
    let k: usize = args.get_num("k", 17);
    let chunk_reads: Option<usize> = args
        .options
        .get("chunk-reads")
        .map(|v| v.parse().unwrap_or_else(|_| panic!("--chunk-reads expects a number, got {v:?}")));
    let checkpoint_dir = args.get_str("checkpoint-dir");
    let resume_dir = args.get_str("resume");
    if checkpoint_dir.is_some() && resume_dir.is_some() {
        return Err("--checkpoint-dir and --resume are mutually exclusive".into());
    }
    let streaming = chunk_reads.is_some() || checkpoint_dir.is_some() || resume_dir.is_some();
    if streaming && args.has_flag("correct") {
        return Err(
            "--correct needs the whole read set in memory; drop --chunk-reads/--checkpoint-dir"
                .into(),
        );
    }

    let workers: usize = args.get_num("workers", 1);
    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    let metrics_out = args.get_str("metrics-out");
    let trace_out = args.get_str("trace-out");
    let mut config = PimAssemblerConfig::paper(k)
        .with_min_count(args.get_num("min-count", 1))
        .with_pd(args.get_num("pd", 2))
        .with_hash_subarrays(args.get_num("subarrays", 32))
        .with_workers(workers)
        .with_observability(metrics_out.is_some() || trace_out.is_some());
    if let Some(tips) = args.options.get("simplify") {
        config =
            config.with_simplification(tips.parse().map_err(|_| "--simplify expects a number")?);
    }
    let chunk = chunk_reads.unwrap_or(DEFAULT_CHUNK_READS);
    if streaming {
        config = config.with_chunk_reads(chunk)?;
    }

    let mut assembler = PimAssembler::new(config);
    let run = if streaming {
        let mut session = if let Some(dir) = resume_dir {
            Session::resume(&mut assembler, Path::new(dir))?
        } else {
            let dir = checkpoint_dir.map(std::path::PathBuf::from);
            if let Some(d) = &dir {
                prepare_dir(d, args.has_flag("force"))?;
            }
            Session::start(&mut assembler, dir)?
        };
        let total = feed_session_from_file(&mut session, Path::new(input), chunk)?;
        eprintln!("streamed {total} reads from {input} in chunks of {chunk}");
        let run = session.finish()?;
        for violation in &run.chunk_violations {
            eprintln!("warning: chunk AAP bound exceeded: {violation}");
        }
        run
    } else {
        let mut reads = load_reads(Path::new(input))?;
        eprintln!("loaded {} reads from {input}", reads.len());
        if args.has_flag("correct") {
            let stats = ReadCorrector::new(k, 3).correct_reads(&mut reads)?;
            eprintln!(
                "corrected {} bases ({} uncorrectable)",
                stats.corrected, stats.uncorrectable
            );
        }
        assembler.assemble(&reads)?
    };
    println!("assembly: {}", run.assembly.stats);
    println!(
        "graph: {} nodes, {} edges, {} trails",
        run.assembly.graph_nodes, run.assembly.graph_edges, run.assembly.trails
    );

    if args.has_flag("report") {
        let r = &run.report;
        println!("\nhardware report (Pd = {}, {:.0} chains):", r.pd, r.parallel_chains);
        println!("  commands: {}", r.commands);
        if let Some(par) = r.measured_parallelism {
            println!("  schedule-measured sub-array parallelism: {par:.1}");
        }
        println!(
            "  wall: hashmap {:.3} s | deBruijn {:.3} s | traverse {:.3} s",
            r.hashmap.wall_s, r.debruijn.wall_s, r.traverse.wall_s
        );
        println!(
            "  power {:.1} W | energy {:.3} J | MBR {:.1}% | RUR {:.1}%",
            r.power_w, r.energy_j, r.mbr_percent, r.rur_percent
        );
        let chr14 = r.extrapolate_chr14();
        println!("  chr14-scale extrapolation: {:.1} s @ {:.1} W", chr14.total_s(), chr14.power_w);
    }

    if let Some(path) = metrics_out {
        let snap = run.report.metrics.as_ref().ok_or("metrics snapshot missing from report")?;
        std::fs::write(path, snap.to_json())?;
        eprintln!("wrote metrics snapshot ({} counters) to {path}", snap.counters.len());
    }
    if let Some(path) = trace_out {
        let spans = assembler.span_recorder().ok_or("span recorder missing")?;
        std::fs::write(path, spans.to_chrome_json())?;
        eprintln!("wrote {} trace spans to {path} (open in chrome://tracing)", spans.len());
    }

    if let Some(out) = args.get_str("output") {
        let records: Vec<FastaRecord> = run
            .assembly
            .contigs
            .iter()
            .enumerate()
            .map(|(i, c)| FastaRecord {
                name: format!("contig_{i} len={}", c.len()),
                seq: c.sequence().clone(),
            })
            .collect();
        write_fasta(File::create(out)?, &records)?;
        eprintln!("wrote {} contigs to {out}", records.len());
    }
    Ok(())
}

/// `pim-asm simulate`.
pub fn simulate(args: &ParsedArgs) -> CliResult {
    let input = args.positional.first().ok_or("simulate needs a genome FASTA")?;
    let records = read_fasta(BufReader::new(File::open(input)?))?;
    let genome = &records.first().ok_or("empty FASTA")?.seq;
    let coverage: f64 = args.get_num("coverage", 25.0);
    let seed: u64 = args.get_num("seed", 42);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let reads = ReadSimulator::new(101, coverage).simulate(genome, &mut rng);
    let out = args.get_str("output").unwrap_or("reads.fasta");
    let records: Vec<FastaRecord> = reads
        .iter()
        .map(|r| FastaRecord { name: format!("read_{}", r.id), seq: r.seq.clone() })
        .collect();
    write_fasta(File::create(out)?, &records)?;
    println!("sampled {} x 101 bp reads at {coverage}x into {out}", reads.len());
    Ok(())
}

/// `pim-asm stats`.
pub fn stats(args: &ParsedArgs) -> CliResult {
    use pim_genome::contig::Contig;
    use pim_genome::stats::{lx, nx, AssemblyStats};
    if let Some(path) = args.get_str("metrics") {
        return metrics_stats(path);
    }
    let input = args.positional.first().ok_or("stats needs a contigs FASTA")?;
    let records = read_fasta(BufReader::new(File::open(input)?))?;
    let contigs: Vec<Contig> = records.iter().map(|r| Contig::new(r.seq.clone())).collect();
    let s = AssemblyStats::from_contigs(&contigs);
    println!("{s}");
    println!("N90 = {} bp | L50 = {} contigs", nx(&contigs, 90.0), lx(&contigs, 50.0));
    let mut lengths: Vec<(usize, &str)> =
        records.iter().map(|r| (r.seq.len(), r.name.as_str())).collect();
    lengths.sort_unstable_by_key(|&(len, _)| std::cmp::Reverse(len));
    for (len, name) in lengths.iter().take(10) {
        println!("{len:>10} bp  {name}");
    }
    if lengths.len() > 10 {
        println!("… and {} more", lengths.len() - 10);
    }
    Ok(())
}

/// `pim-asm stats --metrics`: renders a pim-obsv snapshot as tables.
fn metrics_stats(path: &str) -> CliResult {
    use pim_obsv::MetricsSnapshot;
    let text = std::fs::read_to_string(path)?;
    let snap = MetricsSnapshot::parse(&text)
        .ok_or_else(|| format!("{path} is not a pim-obsv metrics snapshot"))?;

    let mut detail = 0usize;
    println!("stage/aggregate counters:");
    for (key, value) in &snap.counters {
        // Per-sub-array detail keys ("<stage>.subNNNNN.<metric>") are
        // summarized, not listed — 32k sub-arrays would swamp the table.
        if key.contains(".sub") {
            detail += 1;
            continue;
        }
        println!("  {key:<44} {value:>16}");
    }
    if detail > 0 {
        println!("  … plus {detail} per-sub-array detail counters");
    }
    if !snap.floats.is_empty() {
        println!("derived:");
        for (key, value) in &snap.floats {
            println!("  {key:<44} {value:>16.3}");
        }
    }
    if !snap.host.is_empty() {
        println!("host-side (timing-dependent, excluded from determinism):");
        for (key, value) in &snap.host {
            println!("  {key:<44} {value:>16}");
        }
    }
    Ok(())
}

/// `pim-asm verify`.
/// `pim-asm map`: the second workload — stream simulated reads against a
/// synthetic reference, mapping each through the seed-filter + DP funnel
/// on the array, and compare against the software oracle.
pub fn map(args: &ParsedArgs) -> CliResult {
    use pim_assembler::mapping_stage::{run_mapping, MappingRunConfig};
    let defaults = MappingRunConfig::default();
    let config = MappingRunConfig {
        genome_len: args.get_num("genome-len", defaults.genome_len),
        read_len: args.get_num("read-len", defaults.read_len),
        coverage: args.get_num("coverage", 4.0),
        error_rate: args.get_num("error-rate", 0.02),
        seed: args.get_num("seed", defaults.seed),
        backend: match args.get_str("backend") {
            Some(name) => parse_backend(name)?,
            None => defaults.backend,
        },
        opt: parse_opt_level(args)?,
        workers: args.get_num("workers", 0),
        fault_rate: args.get_num("faults", 0.0),
        ..defaults
    };
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let genome = pim_genome::sequence::DnaSequence::random(&mut rng, config.genome_len);
    let reads = ReadSimulator::new(config.read_len, config.coverage)
        .with_error_rate(config.error_rate)
        .simulate(&genome, &mut rng);
    let report = run_mapping(&config, &genome, &reads)?;

    let s = report.stats;
    println!(
        "mapped {}/{} reads against a {} bp reference on {} ({})",
        s.mapped, report.reads, config.genome_len, config.backend, config.opt
    );
    println!(
        "  funnel: {} seeded, {} candidates, {} survivors, {} DP cells",
        s.seeded, s.candidates, s.survivors, s.dp_cells
    );
    println!(
        "  software oracle agreement: {}  shadow mismatches: {}  fault flips: {}",
        report.agreement, s.shadow_mismatches, report.fault_flips
    );
    if let Some(metrics) = &report.metrics {
        for key in ["mapping.map_seed_probes", "mapping.map_match_planes", "mapping.aap2"] {
            println!("  {key} = {}", metrics.counter(key));
        }
    }
    if report.agreement || config.fault_rate > 0.0 {
        Ok(())
    } else {
        Err("PIM mapping diverged from the software oracle on a healthy array".into())
    }
}

pub fn verify(args: &ParsedArgs) -> CliResult {
    use pim_verify::{standard_suite, SuiteOptions};
    match args.get_str("stage") {
        Some("mapping") => return verify_mapping(args),
        Some("resume") => return verify_resume(args),
        Some(other) => {
            return Err(format!("unknown --stage {other:?} (one of: mapping, resume)").into())
        }
        None => {}
    }
    if args.get_str("backend").is_some() {
        return verify_backends(args);
    }
    let defaults = SuiteOptions::default();
    let fault_rates = match args.get_str("faults").unwrap_or("1e-4") {
        "none" => Vec::new(),
        list => list
            .split(',')
            .map(|r| r.trim().parse::<f64>().map_err(|_| format!("bad fault rate {r:?}")))
            .collect::<Result<Vec<f64>, _>>()?,
    };
    let options = SuiteOptions {
        genome_len: args.get_num("genome-len", defaults.genome_len),
        k: args.get_num("k", defaults.k),
        min_count: args.get_num("min-count", defaults.min_count),
        seed: args.get_num("seed", defaults.seed),
        fault_rates,
    };
    let report = standard_suite(&options);
    println!("{report}");
    if report.passed() {
        Ok(())
    } else {
        Err("verification failed".into())
    }
}

/// `pim-asm verify --stage mapping`: the read-mapping workload's
/// differential + fault suite — hits and scores must equal the software
/// oracle byte for byte on every requested backend, serial must equal
/// parallel, and injected faults must raise detection counters.
fn verify_mapping(args: &ParsedArgs) -> CliResult {
    use pim_verify::MappingSuiteOptions;
    let defaults = MappingSuiteOptions::default();
    let fault_rates = match args.get_str("faults").unwrap_or("1e-3") {
        "none" => Vec::new(),
        list => list
            .split(',')
            .map(|r| r.trim().parse::<f64>().map_err(|_| format!("bad fault rate {r:?}")))
            .collect::<Result<Vec<f64>, _>>()?,
    };
    let backends = match args.get_str("backend") {
        None | Some("all") => pim_assembler::ir::BackendKind::ALL.to_vec(),
        Some(name) => vec![parse_backend(name)?],
    };
    let options = MappingSuiteOptions {
        genome_len: args.get_num("genome-len", defaults.genome_len),
        read_len: args.get_num("read-len", defaults.read_len),
        coverage: args.get_num("coverage", defaults.coverage),
        error_rate: args.get_num("error-rate", defaults.error_rate),
        seed: args.get_num("seed", defaults.seed),
        opt: parse_opt_level(args)?,
        backends,
        fault_rates,
    };
    let report = pim_verify::mapping_suite(&options);
    println!("{report}");
    if report.passed() {
        Ok(())
    } else {
        Err("mapping verification failed".into())
    }
}

/// `pim-asm verify --stage resume`: the staged-execution identity suite —
/// streamed, checkpointed, killed, and resumed runs must be byte-identical
/// to the one-shot pipeline across the worker × opt-level matrix.
fn verify_resume(args: &ParsedArgs) -> CliResult {
    use pim_verify::{resume_suite, ResumeSuiteOptions, VerifyReport};
    let defaults = ResumeSuiteOptions::default();
    let options = ResumeSuiteOptions {
        genome_len: args.get_num("genome-len", defaults.genome_len),
        k: args.get_num("k", defaults.k),
        seed: args.get_num("seed", defaults.seed),
        ..defaults
    };
    let report = VerifyReport { oracles: resume_suite(&options), ..VerifyReport::default() };
    println!("{report}");
    if report.passed() {
        Ok(())
    } else {
        Err("resume verification failed".into())
    }
}

/// `pim-asm verify --backend`: the cross-backend differential suite —
/// stage kernels retargeted to a lowering backend must reproduce the
/// software oracle bit for bit.
fn verify_backends(args: &ParsedArgs) -> CliResult {
    use pim_verify::{backend_suite, single_backend_suite, BackendSuiteOptions};
    let name = args.get_str("backend").expect("caller checked --backend");
    let defaults = BackendSuiteOptions::default();
    let options = BackendSuiteOptions {
        genome_len: args.get_num("genome-len", defaults.genome_len),
        k: args.get_num("k", defaults.k),
        min_count: args.get_num("min-count", defaults.min_count),
        seed: args.get_num("seed", defaults.seed),
        opt: parse_opt_level(args)?,
    };
    let report = match name {
        "all" => backend_suite(&options),
        _ => single_backend_suite(&options, parse_backend(name)?),
    };
    println!("{report}");
    if report.passed() {
        Ok(())
    } else {
        Err("backend verification failed".into())
    }
}

/// `pim-asm bench`.
pub fn bench(args: &ParsedArgs) -> CliResult {
    let iters: u64 = args.get_num("iters", 100_000);
    let genome_len: usize = args.get_num("genome-len", 3000);
    let backend = match args.get_str("backend") {
        Some(name) => parse_backend(name)?,
        None => pim_assembler::ir::BackendKind::PimAssembler,
    };
    let baseline = match args.get_str("baseline") {
        Some(path) => crate::bench::parse_measurements(&std::fs::read_to_string(path)?),
        None => Vec::new(),
    };
    let opt = parse_opt_level(args)?;
    let report = crate::bench::run_all_for(iters, genome_len, backend, opt)?;
    for m in &report.measurements {
        let extra = baseline
            .iter()
            .find(|b| b.name == m.name && m.ns_per_op > 0.0)
            .map(|b| format!("  ({:.2}x vs baseline)", b.ns_per_op / m.ns_per_op))
            .unwrap_or_default();
        eprintln!("{:<24} {:>14.1} ns/op over {} ops{extra}", m.name, m.ns_per_op, m.ops);
    }
    eprintln!("serial vs worker-pool stats identical: {}", report.serial_parallel_identical);
    let json = crate::bench::to_json(&report, &baseline);
    if args.has_flag("json") {
        print!("{json}");
    }
    if let Some(out) = args.get_str("out") {
        if Path::new(out).exists() && !args.has_flag("force") {
            return Err(format!("refusing to overwrite {out}; pass --force to replace it").into());
        }
        std::fs::write(out, &json)?;
        eprintln!("wrote {out}");
    }
    Ok(())
}

/// `pim-asm ir`: dump a kernel's IR before and after lowering.
pub fn ir(args: &ParsedArgs) -> CliResult {
    use pim_assembler::ir::{compile_backend_opt, kernels, BackendKind, LowerOptions};
    let known = kernels::KERNEL_NAMES.join(", ");
    let name = args.get_str("kernel").ok_or(format!("ir needs --kernel NAME (one of: {known})"))?;
    let program =
        kernels::by_name(name).ok_or(format!("unknown kernel {name:?} (one of: {known})"))?;
    let backend = match args.get_str("backend") {
        Some(b) => parse_backend(b)?,
        None => BackendKind::PimAssembler,
    };
    let opt = parse_opt_level(args)?;
    let cols: usize = args.get_num("cols", 256);
    let slots: usize = args.get_num("slots", pim_dram::geometry::COMPUTE_ROWS);
    if cols == 0 || slots == 0 {
        return Err("--cols and --slots must be at least 1".into());
    }

    println!("── pre-lowering IR ──────────────────────────────────────────");
    print!("{}", program.to_text());
    println!();
    println!("── lowering for backend={backend}, cols={cols}, compute slots={slots}, {opt} ──");
    let options = LowerOptions { row_bits: cols, size: cols, compute_slots: slots };
    let kernel = compile_backend_opt(&program, &options, backend, opt)
        .map_err(|e| format!("lowering failed: {e}"))?;
    print!("{}", kernel.to_text());
    if let Some(stats) = &kernel.report().opt {
        println!(
            "optimizer: {} candidates, {} verified, {}",
            stats.candidates_considered,
            stats.candidates_verified,
            if stats.improved {
                format!("improved {} ps → {} ps", stats.baseline_cost_ps, stats.best_cost_ps)
            } else {
                "kept the canonical stream".to_string()
            }
        );
    }
    Ok(())
}

/// `pim-asm throughput`.
pub fn throughput() -> CliResult {
    let report = ThroughputReport::paper_sweep();
    println!("bulk-op throughput (output bits/s), vectors of 2^27..2^29 bits:");
    println!("{:<8} {:>14} {:>14}", "platform", "XNOR2", "addition");
    for name in ["CPU", "GPU", "HMC", "Ambit", "D1", "D3", "P-A"] {
        let p = report
            .points
            .iter()
            .find(|p| p.platform == name && p.bits == PAPER_VECTOR_BITS[0])
            .expect("platform present");
        println!(
            "{:<8} {:>11.1} Gb/s {:>11.1} Gb/s",
            name,
            p.xnor_bits_per_s / 1e9,
            p.add_bits_per_s / 1e9
        );
    }
    Ok(())
}

/// Loads reads from FASTA or FASTQ by extension.
fn load_reads(path: &Path) -> Result<Vec<Read>, Box<dyn Error>> {
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    let file = BufReader::new(File::open(path)?);
    let seqs: Vec<pim_genome::DnaSequence> = match ext {
        "fastq" | "fq" => read_fastq(file)?.into_iter().map(|r| r.seq).collect(),
        _ => read_fasta(file)?.into_iter().map(|r| r.seq).collect(),
    };
    Ok(seqs.into_iter().enumerate().map(|(id, seq)| Read { id, seq, origin: 0 }).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_genome::sequence::DnaSequence;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pim_asm_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn end_to_end_simulate_then_assemble() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let genome = DnaSequence::random(&mut rng, 3000);
        let genome_path = tmp("genome.fasta");
        write_fasta(
            File::create(&genome_path).unwrap(),
            &[FastaRecord { name: "g".into(), seq: genome.clone() }],
        )
        .unwrap();

        let reads_path = tmp("reads.fasta");
        let sim_args = ParsedArgs::parse([
            "simulate".to_string(),
            genome_path.to_str().unwrap().to_string(),
            "--coverage".into(),
            "20".into(),
            "--output".into(),
            reads_path.to_str().unwrap().to_string(),
        ]);
        simulate(&sim_args).unwrap();

        let contigs_path = tmp("contigs.fasta");
        let asm_args = ParsedArgs::parse([
            "assemble".to_string(),
            reads_path.to_str().unwrap().to_string(),
            "--k".into(),
            "17".into(),
            "--output".into(),
            contigs_path.to_str().unwrap().to_string(),
            "--report".into(),
        ]);
        assemble(&asm_args).unwrap();

        let contigs = read_fasta(BufReader::new(File::open(&contigs_path).unwrap())).unwrap();
        assert!(!contigs.is_empty());
        let total: usize = contigs.iter().map(|r| r.seq.len()).sum();
        assert!(total >= 2900, "assembled only {total} bp");
    }

    #[test]
    fn stats_reports_on_a_contig_set() {
        let path = tmp("stats.fasta");
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let records = vec![
            FastaRecord { name: "c0".into(), seq: DnaSequence::random(&mut rng, 500) },
            FastaRecord { name: "c1".into(), seq: DnaSequence::random(&mut rng, 120) },
        ];
        write_fasta(File::create(&path).unwrap(), &records).unwrap();
        let args = ParsedArgs::parse(["stats".to_string(), path.to_str().unwrap().to_string()]);
        stats(&args).unwrap();
    }

    #[test]
    fn fastq_reads_load() {
        let path = tmp("reads.fastq");
        std::fs::write(&path, "@r1\nACGTACGTACGTACGTACGT\n+\nIIIIIIIIIIIIIIIIIIII\n").unwrap();
        let reads = load_reads(&path).unwrap();
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].seq.len(), 20);
    }

    #[test]
    fn throughput_runs() {
        throughput().unwrap();
    }

    #[test]
    fn verify_suite_runs_and_passes() {
        let args = ParsedArgs::parse(
            ["verify", "--genome-len", "300", "--faults", "1e-3"].map(String::from),
        );
        verify(&args).unwrap();
    }

    #[test]
    fn verify_rejects_bad_fault_rates() {
        let args = ParsedArgs::parse(["verify", "--faults", "lots"].map(String::from));
        assert!(verify(&args).is_err());
    }

    #[test]
    fn verify_can_skip_fault_injection() {
        let args = ParsedArgs::parse(
            ["verify", "--genome-len", "300", "--faults", "none"].map(String::from),
        );
        verify(&args).unwrap();
    }

    #[test]
    fn missing_input_is_an_error() {
        let args = ParsedArgs::parse(["assemble".to_string()]);
        assert!(assemble(&args).is_err());
    }

    #[test]
    fn ir_dumps_every_canonical_kernel() {
        for name in pim_assembler::ir::kernels::KERNEL_NAMES {
            let args = ParsedArgs::parse(["ir", "--kernel", name].map(String::from));
            ir(&args).unwrap();
        }
    }

    #[test]
    fn ir_supports_shrunken_slot_counts() {
        // full-adder at 2 slots needs its TRA triple resident at once.
        let args =
            ParsedArgs::parse(["ir", "--kernel", "full-adder", "--slots", "2"].map(String::from));
        let err = ir(&args).unwrap_err();
        assert!(err.to_string().contains("lowering failed"), "{err}");
        // 3 slots is the minimum for the adder — spill-to-copy engages.
        let args =
            ParsedArgs::parse(["ir", "--kernel", "full-adder", "--slots", "3"].map(String::from));
        ir(&args).unwrap();
    }

    #[test]
    fn ir_lowers_every_kernel_on_every_backend_and_alias() {
        for backend in ["pim-assembler", "pa", "pim", "ambit-tra", "ambit", "panda-mram", "mram"] {
            for name in pim_assembler::ir::kernels::KERNEL_NAMES {
                let args = ParsedArgs::parse(
                    ["ir", "--kernel", name, "--backend", backend].map(String::from),
                );
                ir(&args).unwrap();
            }
        }
    }

    #[test]
    fn ir_rejects_unknown_backends_with_the_valid_set() {
        let args =
            ParsedArgs::parse(["ir", "--kernel", "xnor", "--backend", "hbm"].map(String::from));
        let err = ir(&args).unwrap_err().to_string();
        assert!(err.contains("unknown backend \"hbm\""), "{err}");
        for name in ["pim-assembler", "ambit-tra", "panda-mram"] {
            assert!(err.contains(name), "error must list {name}: {err}");
        }
    }

    #[test]
    fn usage_lists_the_backends() {
        for name in ["pim-assembler", "ambit-tra", "panda-mram"] {
            assert!(USAGE.contains(name), "--help must list {name}");
        }
    }

    #[test]
    fn verify_backend_runs_single_and_all_modes() {
        for backend in ["ambit", "mram", "all"] {
            let args = ParsedArgs::parse(
                ["verify", "--backend", backend, "--genome-len", "200"].map(String::from),
            );
            verify(&args).unwrap();
        }
        let args = ParsedArgs::parse(["verify", "--backend", "hmc"].map(String::from));
        let err = verify(&args).unwrap_err().to_string();
        assert!(err.contains("unknown backend"), "{err}");
    }

    #[test]
    fn bench_records_the_backend_and_rejects_unknown_ones() {
        let out = tmp("bench_backend.json");
        let _ = std::fs::remove_file(&out);
        let mut argv: Vec<String> =
            ["bench", "--iters", "5", "--genome-len", "400", "--backend", "mram", "--out"]
                .map(String::from)
                .to_vec();
        argv.push(out.to_str().unwrap().to_string());
        bench(&ParsedArgs::parse(argv)).unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"backend\": \"panda-mram\""), "{json}");

        let args = ParsedArgs::parse(["bench", "--backend", "gpu"].map(String::from));
        let err = bench(&args).unwrap_err().to_string();
        assert!(err.contains("unknown backend"), "{err}");
    }

    #[test]
    fn ir_dumps_optimized_streams_at_o2() {
        for backend in ["pim-assembler", "ambit-tra", "panda-mram"] {
            let args = ParsedArgs::parse(
                ["ir", "--kernel", "full-adder", "--backend", backend, "--opt-level", "2"]
                    .map(String::from),
            );
            ir(&args).unwrap();
        }
    }

    #[test]
    fn opt_level_is_validated_across_subcommands() {
        let args =
            ParsedArgs::parse(["ir", "--kernel", "xnor", "--opt-level", "3"].map(String::from));
        let err = ir(&args).unwrap_err().to_string();
        assert!(err.contains("unknown opt level"), "{err}");
        let args = ParsedArgs::parse(["bench", "--opt-level", "fast"].map(String::from));
        let err = bench(&args).unwrap_err().to_string();
        assert!(err.contains("unknown opt level"), "{err}");
    }

    #[test]
    fn bench_records_the_opt_level_in_the_artifact() {
        let out = tmp("bench_opt.json");
        let _ = std::fs::remove_file(&out);
        let mut argv: Vec<String> = [
            "bench",
            "--iters",
            "5",
            "--genome-len",
            "400",
            "--backend",
            "mram",
            "--opt-level",
            "2",
            "--out",
        ]
        .map(String::from)
        .to_vec();
        argv.push(out.to_str().unwrap().to_string());
        bench(&ParsedArgs::parse(argv)).unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"opt_level\": \"O2\""), "{json}");
    }

    #[test]
    fn ir_rejects_unknown_kernels_and_missing_names() {
        let err = ir(&ParsedArgs::parse(["ir"].map(String::from))).unwrap_err();
        assert!(err.to_string().contains("--kernel"), "{err}");
        assert!(err.to_string().contains("xnor"), "{err}");
        let err = ir(&ParsedArgs::parse(["ir", "--kernel", "nope"].map(String::from))).unwrap_err();
        assert!(err.to_string().contains("unknown kernel"), "{err}");
    }

    #[test]
    fn bench_out_refuses_to_overwrite_without_force() {
        let out = tmp("bench_refuse.json");
        let _ = std::fs::remove_file(&out);
        let base = [
            "bench".to_string(),
            "--iters".into(),
            "5".into(),
            "--genome-len".into(),
            "400".into(),
            "--out".into(),
            out.to_str().unwrap().to_string(),
        ];
        bench(&ParsedArgs::parse(base.clone())).unwrap();
        let first = std::fs::read_to_string(&out).unwrap();
        let err = bench(&ParsedArgs::parse(base.clone())).unwrap_err();
        assert!(err.to_string().contains("refusing to overwrite"), "{err}");
        assert!(err.to_string().contains("--force"), "{err}");
        // The existing artifact survived the refused run intact.
        assert_eq!(std::fs::read_to_string(&out).unwrap(), first);
    }

    #[test]
    fn bench_out_overwrites_with_force() {
        let out = tmp("bench_force.json");
        std::fs::write(&out, "stale contents").unwrap();
        let mut argv: Vec<String> =
            ["bench", "--iters", "5", "--genome-len", "400", "--out"].map(String::from).to_vec();
        argv.push(out.to_str().unwrap().to_string());
        argv.push("--force".into());
        bench(&ParsedArgs::parse(argv)).unwrap();
        let written = std::fs::read_to_string(&out).unwrap();
        assert!(written.contains("\"schema\""), "bench artifact replaced the stale file");
    }

    #[test]
    fn assemble_emits_metrics_and_trace_artifacts() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let genome = DnaSequence::random(&mut rng, 1200);
        let reads = pim_genome::reads::ReadSimulator::new(60, 20.0).simulate(&genome, &mut rng);
        let reads_path = tmp("obsv_reads.fasta");
        let records: Vec<FastaRecord> = reads
            .iter()
            .map(|r| FastaRecord { name: format!("read_{}", r.id), seq: r.seq.clone() })
            .collect();
        write_fasta(File::create(&reads_path).unwrap(), &records).unwrap();

        let metrics_path = tmp("obsv_metrics.json");
        let trace_path = tmp("obsv_trace.json");
        let args = ParsedArgs::parse([
            "assemble".to_string(),
            reads_path.to_str().unwrap().to_string(),
            "--k".into(),
            "15".into(),
            "--subarrays".into(),
            "8".into(),
            "--metrics-out".into(),
            metrics_path.to_str().unwrap().to_string(),
            "--trace-out".into(),
            trace_path.to_str().unwrap().to_string(),
        ]);
        assemble(&args).unwrap();

        let snap =
            pim_obsv::MetricsSnapshot::parse(&std::fs::read_to_string(&metrics_path).unwrap())
                .expect("metrics artifact parses");
        assert!(snap.counter("hashmap.aap2") > 0);
        assert!(snap.counter("total.commands") > 0);
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("stage.hashmap"));

        // And the stats subcommand renders the snapshot.
        let stats_args = ParsedArgs::parse([
            "stats".to_string(),
            "--metrics".into(),
            metrics_path.to_str().unwrap().to_string(),
        ]);
        stats(&stats_args).unwrap();
    }

    #[test]
    fn streamed_assemble_matches_the_batch_run() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let genome = DnaSequence::random(&mut rng, 1500);
        let reads = pim_genome::reads::ReadSimulator::new(60, 20.0).simulate(&genome, &mut rng);
        let reads_path = tmp("stream_reads.fasta");
        let records: Vec<FastaRecord> = reads
            .iter()
            .map(|r| FastaRecord { name: format!("read_{}", r.id), seq: r.seq.clone() })
            .collect();
        write_fasta(File::create(&reads_path).unwrap(), &records).unwrap();

        let batch_out = tmp("stream_batch.fasta");
        assemble(&ParsedArgs::parse([
            "assemble".to_string(),
            reads_path.to_str().unwrap().to_string(),
            "--k".into(),
            "15".into(),
            "--subarrays".into(),
            "8".into(),
            "--output".into(),
            batch_out.to_str().unwrap().to_string(),
        ]))
        .unwrap();

        let streamed_out = tmp("stream_chunked.fasta");
        assemble(&ParsedArgs::parse([
            "assemble".to_string(),
            reads_path.to_str().unwrap().to_string(),
            "--k".into(),
            "15".into(),
            "--subarrays".into(),
            "8".into(),
            "--chunk-reads".into(),
            "17".into(),
            "--output".into(),
            streamed_out.to_str().unwrap().to_string(),
        ]))
        .unwrap();

        assert_eq!(
            std::fs::read_to_string(&batch_out).unwrap(),
            std::fs::read_to_string(&streamed_out).unwrap(),
            "streamed ingestion must produce byte-identical contigs"
        );
    }

    #[test]
    fn checkpointed_assemble_resumes_after_a_kill() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let genome = DnaSequence::random(&mut rng, 1500);
        let reads = pim_genome::reads::ReadSimulator::new(60, 20.0).simulate(&genome, &mut rng);
        let reads_path = tmp("ckpt_reads.fasta");
        let records: Vec<FastaRecord> = reads
            .iter()
            .map(|r| FastaRecord { name: format!("read_{}", r.id), seq: r.seq.clone() })
            .collect();
        write_fasta(File::create(&reads_path).unwrap(), &records).unwrap();

        let batch_out = tmp("ckpt_batch.fasta");
        assemble(&ParsedArgs::parse([
            "assemble".to_string(),
            reads_path.to_str().unwrap().to_string(),
            "--k".into(),
            "15".into(),
            "--subarrays".into(),
            "8".into(),
            "--output".into(),
            batch_out.to_str().unwrap().to_string(),
        ]))
        .unwrap();

        // "Kill" an in-flight checkpointed run by feeding only a prefix.
        let ckpt_dir = tmp("ckpt_dir");
        let _ = std::fs::remove_dir_all(&ckpt_dir);
        {
            use pim_assembler::checkpoint::prepare_dir;
            use pim_assembler::Session;
            prepare_dir(&ckpt_dir, false).unwrap();
            let config =
                PimAssemblerConfig::paper(15).with_hash_subarrays(8).with_chunk_reads(17).unwrap();
            let mut asm = PimAssembler::new(config);
            let mut session = Session::start(&mut asm, Some(ckpt_dir.clone())).unwrap();
            let mut cli_reads = load_reads(&reads_path).unwrap();
            cli_reads.truncate(34);
            session.feed_chunked(&cli_reads, Some(17)).unwrap();
        }

        // `assemble --resume` finishes the run from disk.
        let resumed_out = tmp("ckpt_resumed.fasta");
        assemble(&ParsedArgs::parse([
            "assemble".to_string(),
            reads_path.to_str().unwrap().to_string(),
            "--k".into(),
            "15".into(),
            "--subarrays".into(),
            "8".into(),
            "--chunk-reads".into(),
            "17".into(),
            "--resume".into(),
            ckpt_dir.to_str().unwrap().to_string(),
            "--output".into(),
            resumed_out.to_str().unwrap().to_string(),
        ]))
        .unwrap();

        assert_eq!(
            std::fs::read_to_string(&batch_out).unwrap(),
            std::fs::read_to_string(&resumed_out).unwrap(),
            "resumed run must produce byte-identical contigs"
        );
        std::fs::remove_dir_all(&ckpt_dir).unwrap();
    }

    #[test]
    fn assemble_rejects_conflicting_checkpoint_flags() {
        let args = ParsedArgs::parse(
            ["assemble", "in.fa", "--checkpoint-dir", "a", "--resume", "b"].map(String::from),
        );
        let err = assemble(&args).unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");
        let args = ParsedArgs::parse(
            ["assemble", "in.fa", "--chunk-reads", "8", "--correct"].map(String::from),
        );
        let err = assemble(&args).unwrap_err();
        assert!(err.to_string().contains("--correct"), "{err}");
    }

    #[test]
    fn verify_stage_resume_runs_and_passes() {
        let args = ParsedArgs::parse(
            ["verify", "--stage", "resume", "--genome-len", "250"].map(String::from),
        );
        verify(&args).unwrap();
    }

    #[test]
    fn stats_rejects_non_snapshot_metrics_files() {
        let path = tmp("not_metrics.json");
        std::fs::write(&path, "{\"schema\": \"something-else\"}").unwrap();
        let args = ParsedArgs::parse([
            "stats".to_string(),
            "--metrics".into(),
            path.to_str().unwrap().to_string(),
        ]);
        let err = stats(&args).unwrap_err();
        assert!(err.to_string().contains("not a pim-obsv metrics snapshot"), "{err}");
    }
}
