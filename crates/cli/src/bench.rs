//! Hot-path timing measurements backing `pim-asm bench`.
//!
//! Measures host-side simulator throughput on the AAP hot path — the
//! per-command `op2`/`op3` kernels, instruction-stream execution, and the
//! end-to-end three-stage pipeline — and renders the numbers as a
//! `BENCH_*.json` perf-trajectory artifact. A previous artifact can be
//! passed back in as a baseline to record speedups across commits.
//!
//! Kernel *compilation* (the IR legalize → allocate → peephole pipeline)
//! is timed as its own measurement, separate from the steady-state
//! execution numbers: the template cache pays it once per geometry, so it
//! must never be mixed into per-command figures.
//!
//! The JSON schema is flat on purpose (one object per measurement, all
//! values in nanoseconds per operation) so it can be produced and consumed
//! without a serde dependency.

use std::time::Instant;

use pim_assembler::ir::{self, kernels, BackendKind, LowerOptions, OptLevel};
use pim_assembler::template::{CompiledTemplate, Kernel, TemplateKey};
use pim_assembler::{PimAssembler, PimAssemblerConfig};
use pim_dram::address::RowAddr;
use pim_dram::bitrow::BitRow;
use pim_dram::controller::Controller;
use pim_dram::geometry::DramGeometry;
use pim_dram::sense_amp::SaMode;
use pim_genome::reads::ReadSimulator;
use pim_genome::sequence::DnaSequence;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The bench harness failed to drive a stage — most commonly the
/// end-to-end dataset overflowing the hash partition. Carries the
/// offending sizes so the caller can see *why* instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchError {
    /// Genome length of the synthetic dataset that failed.
    pub genome_len: usize,
    /// Hash-partition sub-arrays the run was configured with.
    pub hash_subarrays: usize,
    /// The underlying stage error, rendered.
    pub source: String,
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bench pipeline failed on a {} bp dataset over {} hash sub-arrays: {} \
             (shrink --genome-len or widen the hash partition)",
            self.genome_len, self.hash_subarrays, self.source
        )
    }
}

impl std::error::Error for BenchError {}

/// One timed hot-path measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Stable measurement key (used to match baselines across runs).
    pub name: String,
    /// Nanoseconds per operation (or per pipeline run for `pipeline_e2e`).
    pub ns_per_op: f64,
    /// How many operations the timing loop executed.
    pub ops: u64,
    /// Which workload the measurement drives: `"assembly"` for the
    /// pipeline + its kernels, `"mapping"` for the read-mapping funnel.
    pub workload: &'static str,
    /// How the workload ingests its input: `"batch"` for one-shot loads,
    /// `"streamed"` for chunked ingestion through the staged engine.
    pub execution: &'static str,
}

/// Results of one full `pim-asm bench` sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Canonical name of the lowering backend the sweep ran on.
    pub backend: &'static str,
    /// IR optimization level the kernels were compiled at.
    pub opt_level: &'static str,
    /// All measurements, in execution order.
    pub measurements: Vec<Measurement>,
    /// Whether the serial and worker-pool pipeline runs produced
    /// bit-identical contigs and command statistics.
    pub serial_parallel_identical: bool,
}

fn setup(backend: BackendKind) -> (Controller, pim_dram::SubarrayId) {
    let ctrl = Controller::with_profile(DramGeometry::paper_assembly(), &backend.profile());
    let id = ctrl.subarray_handle(0, 0, 0, 0).unwrap();
    (ctrl, id)
}

/// Times `iters` repetitions of `f`, returning ns per repetition.
///
/// The repetitions run as five equal blocks and the *fastest* block wins:
/// the minimum is the standard noise rejector for throughput loops — host
/// scheduling and frequency drift only ever add time, so the fastest
/// block is the closest observation of the true cost. Without it,
/// cross-sweep comparisons (the CI O2-vs-O0 gate) drown in machine noise.
fn time_ns_per_op<F: FnMut()>(iters: u64, mut f: F) -> f64 {
    // One warm-up pass keeps one-time lazy work out of the measurement.
    f();
    let block = (iters / 5).max(1);
    let mut best = f64::INFINITY;
    let mut done = 0u64;
    while done < iters {
        let n = block.min(iters - done);
        let start = Instant::now();
        for _ in 0..n {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / n as f64);
        done += n;
    }
    best
}

/// Two-source AAP (XNOR) issued directly at the controller, result unused —
/// the dominant command of the hashmap stage.
fn bench_op2(iters: u64, backend: BackendKind) -> Measurement {
    let (mut ctrl, id) = setup(backend);
    let cols = ctrl.geometry().cols;
    ctrl.write_row(id, 1, &BitRow::from_fn(cols, |i| i % 2 == 0)).unwrap();
    ctrl.write_row(id, 2, &BitRow::from_fn(cols, |i| i % 3 == 0)).unwrap();
    let (x1, x2) = (ctrl.compute_row(0), ctrl.compute_row(1));
    ctrl.aap_copy(id, 1, x1).unwrap();
    ctrl.aap_copy(id, 2, x2).unwrap();
    let ns = time_ns_per_op(iters, || {
        ctrl.aap2_discard(id, SaMode::Xnor, [x1, x2], RowAddr(9)).unwrap();
    });
    Measurement {
        name: "op2_xnor".into(),
        ns_per_op: ns,
        ops: iters,
        workload: "assembly",
        execution: "batch",
    }
}

/// Triple-row-activation carry, result unused — the dominant command of
/// in-memory addition.
fn bench_op3(iters: u64, backend: BackendKind) -> Measurement {
    let (mut ctrl, id) = setup(backend);
    let cols = ctrl.geometry().cols;
    for r in 1..=3usize {
        ctrl.write_row(id, r, &BitRow::from_fn(cols, |i| (i + r) % 3 == 0)).unwrap();
    }
    let (x1, x2, x3) = (ctrl.compute_row(0), ctrl.compute_row(1), ctrl.compute_row(2));
    ctrl.aap_copy(id, 1, x1).unwrap();
    ctrl.aap_copy(id, 2, x2).unwrap();
    ctrl.aap_copy(id, 3, x3).unwrap();
    let ns = time_ns_per_op(iters, || {
        ctrl.aap3_carry_discard(id, [x1, x2, x3], RowAddr(8)).unwrap();
    });
    Measurement {
        name: "op3_carry".into(),
        ns_per_op: ns,
        ops: iters,
        workload: "assembly",
        execution: "batch",
    }
}

/// The IR-compiled full-adder kernel replayed through the template execute
/// path — the shape stage kernels ship to detached contexts. At `O2` the
/// optimizer's shorter stream is what executes, so this measurement is the
/// direct per-kernel payoff of the bounded sequence search.
fn bench_stream_exec(iters: u64, backend: BackendKind, opt: OptLevel) -> Measurement {
    let (mut ctrl, id) = setup(backend);
    let cols = ctrl.geometry().cols;
    for r in 1..=3usize {
        ctrl.write_row(id, r, &BitRow::from_fn(cols, |i| (i + r) % 5 == 0)).unwrap();
    }
    ctrl.write_row(id, 4, &BitRow::zeros(cols)).unwrap();
    let adder = CompiledTemplate::compile(
        TemplateKey::new(Kernel::FullAdder, cols, cols).with_backend(backend).with_opt(opt),
    );
    let mut rows = [RowAddr(0); 24];
    let n = adder
        .bind_roles_into(
            &ctrl,
            &[RowAddr(1), RowAddr(2), RowAddr(3)],
            &[RowAddr(10), RowAddr(11)],
            RowAddr(4),
            &[],
            &mut rows,
        )
        .unwrap();
    let ns = time_ns_per_op(iters, || {
        adder.execute(&mut ctrl, id, &rows[..n]).unwrap();
    });
    Measurement {
        name: "stream_full_adder".into(),
        ns_per_op: ns,
        ops: iters,
        workload: "assembly",
        execution: "batch",
    }
}

/// One full IR lowering of both built-in kernels, cache bypassed — the
/// compile-time cost the template cache amortizes out of every
/// steady-state number above.
fn bench_ir_compile(iters: u64, backend: BackendKind) -> Measurement {
    let cols = DramGeometry::paper_assembly().cols;
    let options = LowerOptions::for_row(cols);
    let (xnor, adder) = (kernels::xnor(), kernels::full_adder());
    let ns = time_ns_per_op(iters, || {
        let x = ir::compile_backend(&xnor, &options, backend).unwrap();
        let fa = ir::compile_backend(&adder, &options, backend).unwrap();
        assert!(x.role_count() + fa.role_count() > 0);
    });
    Measurement {
        name: "ir_compile_kernels".into(),
        ns_per_op: ns,
        ops: iters,
        workload: "assembly",
        execution: "batch",
    }
}

/// End-to-end three-stage pipeline wall-clock on a synthetic read set, run
/// serially and through the worker pool; also checks the two runs agree
/// bit-for-bit.
///
/// # Errors
///
/// [`BenchError`] when the dataset overflows the `subarrays`-wide hash
/// partition (or any stage fails), naming the offending sizes.
fn bench_pipeline(
    genome_len: usize,
    subarrays: usize,
    opt: OptLevel,
) -> Result<(Measurement, Measurement, Measurement, bool), BenchError> {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let genome = DnaSequence::random(&mut rng, genome_len);
    let reads = ReadSimulator::new(101, 10.0).simulate(&genome, &mut rng);
    let config = PimAssemblerConfig::paper(15).with_hash_subarrays(subarrays).with_opt_level(opt);
    // Streamed leg: the same workload ingested 64 reads at a time through
    // the staged engine (results must stay byte-identical to batch).
    let streamed_config = config.with_chunk_reads(64).map_err(|e| BenchError {
        genome_len,
        hash_subarrays: subarrays,
        source: e.to_string(),
    })?;

    let run_once = |cfg: PimAssemblerConfig, workers: usize| {
        let mut asm = PimAssembler::new(cfg.with_workers(workers));
        let start = Instant::now();
        let run = asm.assemble(&reads).map_err(|e| BenchError {
            genome_len,
            hash_subarrays: subarrays,
            source: e.to_string(),
        })?;
        Ok((start.elapsed().as_nanos() as f64, run))
    };

    // Warm-up (page cache, allocator arenas), then best-of-three timed
    // runs each — the same noise rejection as the micro-bench blocks,
    // without which single-shot wall clocks swing far more than any real
    // effect being tracked.
    const RUNS: usize = 3;
    let _ = run_once(config, 1)?;
    let mut serial_ns = f64::INFINITY;
    let mut pool_ns = f64::INFINITY;
    let mut streamed_ns = f64::INFINITY;
    let mut serial_run = None;
    let mut pool_run = None;
    let mut streamed_run = None;
    for _ in 0..RUNS {
        let (ns, run) = run_once(config, 1)?;
        serial_ns = serial_ns.min(ns);
        serial_run = Some(run);
        let (ns, run) = run_once(config, 4)?;
        pool_ns = pool_ns.min(ns);
        pool_run = Some(run);
        let (ns, run) = run_once(streamed_config, 1)?;
        streamed_ns = streamed_ns.min(ns);
        streamed_run = Some(run);
    }
    let (serial_run, pool_run, streamed_run) = (
        serial_run.expect("RUNS > 0"),
        pool_run.expect("RUNS > 0"),
        streamed_run.expect("RUNS > 0"),
    );
    let identical = serial_run.assembly.contigs == pool_run.assembly.contigs
        && serial_run.report.commands == pool_run.report.commands
        && serial_run.assembly.contigs == streamed_run.assembly.contigs
        && serial_run.report.commands == streamed_run.report.commands;
    Ok((
        Measurement {
            name: "pipeline_e2e_serial".into(),
            ns_per_op: serial_ns,
            ops: RUNS as u64,
            workload: "assembly",
            execution: "batch",
        },
        Measurement {
            name: "pipeline_e2e_pool4".into(),
            ns_per_op: pool_ns,
            ops: RUNS as u64,
            workload: "assembly",
            execution: "batch",
        },
        Measurement {
            name: "pipeline_e2e_streamed".into(),
            ns_per_op: streamed_ns,
            ops: RUNS as u64,
            workload: "assembly",
            execution: "streamed",
        },
        identical,
    ))
}

/// End-to-end read-mapping workload wall-clock: index a synthetic
/// reference, stream an error-bearing read set through the seed-filter +
/// DP funnel, and require software-oracle agreement. Sized well below the
/// assembly dataset — the DP leg dominates and scales with reads, not
/// genome length.
///
/// # Errors
///
/// [`BenchError`] when the mapping run fails (overflowing seed regions).
fn bench_mapping(opt: OptLevel) -> Result<Measurement, BenchError> {
    use pim_assembler::mapping_stage::{run_mapping, MappingRunConfig};
    let config = MappingRunConfig { error_rate: 0.02, opt, ..MappingRunConfig::default() };
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let genome = DnaSequence::random(&mut rng, config.genome_len);
    let reads = ReadSimulator::new(config.read_len, config.coverage)
        .with_error_rate(config.error_rate)
        .simulate(&genome, &mut rng);
    let run_once = || {
        let start = Instant::now();
        let report = run_mapping(&config, &genome, &reads).map_err(|e| BenchError {
            genome_len: config.genome_len,
            hash_subarrays: config.subarrays,
            source: e.to_string(),
        })?;
        assert!(report.agreement, "bench mapping run diverged from the software oracle");
        Ok(start.elapsed().as_nanos() as f64)
    };
    const RUNS: usize = 3;
    let _ = run_once()?;
    let mut best = f64::INFINITY;
    for _ in 0..RUNS {
        best = best.min(run_once()?);
    }
    Ok(Measurement {
        name: "mapping_e2e".into(),
        ns_per_op: best,
        ops: RUNS as u64,
        workload: "mapping",
        execution: "batch",
    })
}

/// Runs the full sweep against `backend`'s substrate profile at `opt`.
/// `iters` scales the micro-bench loops and `genome_len` the end-to-end
/// dataset. The end-to-end pipeline is a PIM-Assembler workload, so
/// non-default backends measure the micro-benches only (command kernels,
/// stream execution, lowering).
///
/// # Errors
///
/// [`BenchError`] when the end-to-end dataset cannot be driven through
/// the pipeline (the micro-benches themselves cannot fail).
pub fn run_all_for(
    iters: u64,
    genome_len: usize,
    backend: BackendKind,
    opt: OptLevel,
) -> Result<BenchReport, BenchError> {
    let mut measurements = vec![
        bench_op2(iters, backend),
        bench_op3(iters, backend),
        bench_stream_exec(iters / 8 + 1, backend, opt),
        bench_ir_compile(iters / 64 + 1, backend),
    ];
    let mut identical = true;
    if backend == BackendKind::PimAssembler {
        let subarrays = (genome_len / 300 + 2).next_power_of_two().max(8);
        let (serial, pool, streamed, pipeline_identical) =
            bench_pipeline(genome_len, subarrays, opt)?;
        measurements.push(serial);
        measurements.push(pool);
        measurements.push(streamed);
        measurements.push(bench_mapping(opt)?);
        identical = pipeline_identical;
    }
    Ok(BenchReport {
        backend: backend.name(),
        opt_level: opt.name(),
        measurements,
        serial_parallel_identical: identical,
    })
}

/// Renders the report as the `BENCH_*.json` artifact. When `baseline`
/// measurements are given, matching names gain `baseline_ns_per_op` and
/// `speedup` fields.
pub fn to_json(report: &BenchReport, baseline: &[Measurement]) -> String {
    let mut out = format!(
        "{{\n  \"schema\": \"pim-bench-hotpath-v3\",\n  \"backend\": \"{}\",\n  \
         \"opt_level\": \"{}\",\n  \"results\": [\n",
        report.backend, report.opt_level
    );
    for (i, m) in report.measurements.iter().enumerate() {
        let sep = if i + 1 < report.measurements.len() { "," } else { "" };
        let execution = if m.execution.is_empty() { "batch" } else { m.execution };
        let base = baseline.iter().find(|b| b.name == m.name);
        match base {
            Some(b) if m.ns_per_op > 0.0 => out.push_str(&format!(
                "    {{\"name\": \"{}\", \"workload\": \"{}\", \"execution\": \"{}\", \
                 \"ns_per_op\": {:.2}, \"ops\": {}, \"baseline_ns_per_op\": {:.2}, \
                 \"speedup\": {:.3}}}{}\n",
                m.name,
                m.workload,
                execution,
                m.ns_per_op,
                m.ops,
                b.ns_per_op,
                b.ns_per_op / m.ns_per_op,
                sep
            )),
            _ => out.push_str(&format!(
                "    {{\"name\": \"{}\", \"workload\": \"{}\", \"execution\": \"{}\", \
                 \"ns_per_op\": {:.2}, \"ops\": {}}}{}\n",
                m.name, m.workload, execution, m.ns_per_op, m.ops, sep
            )),
        }
    }
    out.push_str(&format!(
        "  ],\n  \"serial_parallel_identical\": {}\n}}\n",
        report.serial_parallel_identical
    ));
    out
}

/// Parses the measurements back out of a `BENCH_*.json` artifact produced
/// by [`to_json`] (names and `ns_per_op` only — enough to baseline).
pub fn parse_measurements(json: &str) -> Vec<Measurement> {
    let mut out = Vec::new();
    for chunk in json.split("{\"name\": \"").skip(1) {
        let Some(name_end) = chunk.find('"') else { continue };
        let name = &chunk[..name_end];
        let Some(v) = chunk[name_end..].split("\"ns_per_op\": ").nth(1) else { continue };
        let num: String =
            v.chars().take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-').collect();
        if let Ok(ns_per_op) = num.parse::<f64>() {
            out.push(Measurement {
                name: name.to_string(),
                ns_per_op,
                ops: 0,
                workload: "",
                execution: "",
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips_through_the_parser() {
        let report = BenchReport {
            backend: "pim-assembler",
            opt_level: "O0",
            measurements: vec![
                Measurement {
                    name: "op2_xnor".into(),
                    ns_per_op: 123.45,
                    ops: 10,
                    workload: "assembly",
                    execution: "batch",
                },
                Measurement {
                    name: "pipeline_e2e_serial".into(),
                    ns_per_op: 9.5e8,
                    ops: 1,
                    workload: "assembly",
                    execution: "batch",
                },
            ],
            serial_parallel_identical: true,
        };
        let json = to_json(&report, &[]);
        assert!(json.contains("\"backend\": \"pim-assembler\""), "{json}");
        assert!(json.contains("\"opt_level\": \"O0\""), "{json}");
        let parsed = parse_measurements(&json);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "op2_xnor");
        assert!((parsed[0].ns_per_op - 123.45).abs() < 1e-9);
        assert!((parsed[1].ns_per_op - 9.5e8).abs() < 1.0);
    }

    #[test]
    fn baseline_produces_speedup_fields() {
        let report = BenchReport {
            backend: "pim-assembler",
            opt_level: "O2",
            measurements: vec![Measurement {
                name: "op2_xnor".into(),
                ns_per_op: 50.0,
                ops: 10,
                workload: "assembly",
                execution: "batch",
            }],
            serial_parallel_identical: true,
        };
        let baseline = vec![Measurement {
            name: "op2_xnor".into(),
            ns_per_op: 100.0,
            ops: 0,
            workload: "assembly",
            execution: "batch",
        }];
        let json = to_json(&report, &baseline);
        assert!(json.contains("\"speedup\": 2.000"), "{json}");
        assert!(json.contains("\"baseline_ns_per_op\": 100.00"), "{json}");
    }

    #[test]
    fn quick_sweep_produces_all_measurements() {
        let report = run_all_for(50, 600, BackendKind::PimAssembler, OptLevel::O0).unwrap();
        assert_eq!(report.backend, "pim-assembler");
        assert_eq!(report.opt_level, "O0");
        let names: Vec<&str> = report.measurements.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "op2_xnor",
                "op3_carry",
                "stream_full_adder",
                "ir_compile_kernels",
                "pipeline_e2e_serial",
                "pipeline_e2e_pool4",
                "pipeline_e2e_streamed",
                "mapping_e2e"
            ]
        );
        let json = to_json(&report, &[]);
        assert!(json.contains("\"schema\": \"pim-bench-hotpath-v3\""), "{json}");
        assert!(json.contains("\"workload\": \"mapping\""), "{json}");
        assert!(json.contains("\"workload\": \"assembly\""), "{json}");
        assert!(json.contains("\"execution\": \"streamed\""), "{json}");
        assert!(json.contains("\"execution\": \"batch\""), "{json}");
        assert!(report.measurements.iter().all(|m| m.ns_per_op > 0.0));
        assert!(report.serial_parallel_identical);
    }

    #[test]
    fn overflowing_dataset_reports_sizes_instead_of_panicking() {
        // A 3000 bp dataset into a single hash sub-array cannot fit; the
        // harness must surface the offending sizes and the remediation
        // hint, never panic (the old `expect` at this site did).
        let err = bench_pipeline(3000, 1, OptLevel::O0).unwrap_err();
        assert_eq!(err.genome_len, 3000);
        assert_eq!(err.hash_subarrays, 1);
        let msg = err.to_string();
        assert!(msg.contains("3000 bp"), "{msg}");
        assert!(msg.contains("1 hash sub-arrays"), "{msg}");
        assert!(msg.contains("--genome-len"), "{msg}");
    }

    #[test]
    fn o2_sweep_runs_and_records_its_level() {
        let report = run_all_for(20, 600, BackendKind::PimAssembler, OptLevel::O2).unwrap();
        assert_eq!(report.opt_level, "O2");
        assert!(report.serial_parallel_identical, "O2 must not perturb results");
        let json = to_json(&report, &[]);
        assert!(json.contains("\"opt_level\": \"O2\""), "{json}");
    }

    #[test]
    fn retargeted_sweeps_run_the_micro_benches() {
        for backend in [BackendKind::AmbitTra, BackendKind::PandaMram] {
            let report = run_all_for(20, 600, backend, OptLevel::O0).unwrap();
            assert_eq!(report.backend, backend.name());
            let names: Vec<&str> = report.measurements.iter().map(|m| m.name.as_str()).collect();
            assert_eq!(
                names,
                ["op2_xnor", "op3_carry", "stream_full_adder", "ir_compile_kernels"],
                "non-default backends skip the end-to-end pipeline"
            );
            assert!(report.measurements.iter().all(|m| m.ns_per_op > 0.0));
            let json = to_json(&report, &[]);
            assert!(json.contains(&format!("\"backend\": \"{}\"", backend.name())), "{json}");
        }
    }
}
