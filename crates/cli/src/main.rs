//! `pim-asm` — assemble genomes on the simulated PIM-Assembler platform.
//!
//! ```text
//! pim-asm assemble <reads.fasta|fastq> [--k 17] [--min-count 1]
//!         [--simplify N] [--correct] [--pd 2] [--subarrays 32]
//!         [--workers 1] [--output contigs.fasta] [--report]
//!         [--chunk-reads N] [--checkpoint-dir D [--force] | --resume D]
//! pim-asm simulate <genome.fasta> [--coverage 25] [--seed 42]
//!         [--output reads.fasta]
//! pim-asm stats <contigs.fasta>
//! pim-asm throughput
//! pim-asm map [--genome-len 300] [--read-len 32] [--coverage 4]
//!         [--error-rate 0.02] [--seed 42] [--workers 0] [--faults 0]
//!         [--backend <pim-assembler|ambit-tra|panda-mram>] [--opt-level <0|2>]
//! pim-asm verify [--k 9] [--genome-len 400] [--seed 42] [--faults 1e-4]
//!         [--stage <mapping|resume>]
//!         [--backend <pim-assembler|ambit-tra|panda-mram|all>]
//! pim-asm bench [--iters 100000] [--genome-len 3000] [--json]
//!         [--out BENCH.json] [--baseline BENCH_prev.json]
//!         [--backend <pim-assembler|ambit-tra|panda-mram>]
//! pim-asm ir --kernel <xnor|full-adder> [--cols 256] [--slots 8]
//!         [--backend <pim-assembler|ambit-tra|panda-mram>]
//! pim-asm help
//! ```

mod args;
mod bench;
mod commands;

use args::ParsedArgs;

fn main() {
    let parsed = ParsedArgs::parse(std::env::args().skip(1));
    let result = match parsed.command.as_str() {
        "assemble" => commands::assemble(&parsed),
        "stats" => commands::stats(&parsed),
        "simulate" => commands::simulate(&parsed),
        "throughput" => commands::throughput(),
        "map" => commands::map(&parsed),
        "verify" => commands::verify(&parsed),
        "bench" => commands::bench(&parsed),
        "ir" => commands::ir(&parsed),
        "" | "help" | "--help" => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        other => {
            eprintln!("unknown command {other:?}\n");
            eprint!("{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
