//! Watch the hardware work: trace the exact AAP command sequence of one
//! `PIM_XNOR` comparison and one full-adder step.
//!
//! ```sh
//! cargo run --example command_trace
//! ```

use pim_assembler_suite::assembler::layout::SubarrayLayout;
use pim_assembler_suite::assembler::mapping::KmerMapper;
use pim_assembler_suite::assembler::pim_add::PimAdder;
use pim_assembler_suite::assembler::pim_xnor::PimComparator;
use pim_assembler_suite::dram::bitrow::BitRow;
use pim_assembler_suite::dram::controller::Controller;
use pim_assembler_suite::dram::geometry::DramGeometry;
use pim_assembler_suite::dram::RowAddr;
use pim_assembler_suite::genome::Kmer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = DramGeometry::paper_assembly();
    let mut ctrl = Controller::new(g);
    let id = ctrl.subarray_handle(0, 0, 0, 0)?;
    let layout = SubarrayLayout::new(&g);
    let mapper = KmerMapper::new(&g, 1, 8);

    // ── A PIM_XNOR comparison, traced ────────────────────────────────
    let stored: Kmer = "CGTGCGTGCTTACGGA".parse()?;
    let query: Kmer = "CGTGCGTGCTTACGGA".parse()?;
    ctrl.write_row(id, layout.kmer_row(0)?, &mapper.row_image(&stored, g.cols))?;
    ctrl.enable_trace(16);
    let comparator = PimComparator::new(g.cols);
    comparator.stage_query(&mut ctrl, id, layout.temp_row(0), &mapper.row_image(&query, g.cols))?;
    let matched = comparator.compare(
        &mut ctrl,
        id,
        layout.temp_row(0),
        layout.kmer_row(0)?,
        layout.temp_row(1),
    )?;
    println!("PIM_XNOR command trace (query == stored: {matched}):");
    print!("{}", ctrl.take_trace().expect("trace enabled"));

    // ── A full-adder step, traced ────────────────────────────────────
    let cols = g.cols;
    ctrl.write_row(id, 10, &BitRow::from_fn(cols, |i| i % 2 == 0))?;
    ctrl.write_row(id, 11, &BitRow::from_fn(cols, |i| i % 3 == 0))?;
    ctrl.write_row(id, 12, &BitRow::from_fn(cols, |i| i % 5 == 0))?;
    ctrl.write_row(id, 13, &BitRow::zeros(cols))?;
    ctrl.enable_trace(16);
    PimAdder::full_add(
        &mut ctrl,
        id,
        RowAddr(10),
        RowAddr(11),
        RowAddr(12),
        RowAddr(13),
        RowAddr(20),
        RowAddr(21),
    )?;
    println!("\nPIM_Add full-adder command trace (latch carry, sum cycle, carry cycle):");
    print!("{}", ctrl.take_trace().expect("trace enabled"));

    println!("\ntotal commands issued this session: {}", ctrl.stats().total_commands());
    Ok(())
}
