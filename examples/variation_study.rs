//! Circuit-level reliability study: why two-row activation survives process
//! variation that breaks TRA (Table I), plus the Fig. 3a transient check.
//!
//! ```sh
//! cargo run --release --example variation_study
//! ```

use pim_assembler_suite::circuits::charge_sharing::ChargeSharing;
use pim_assembler_suite::circuits::transient::TransientSim;
use pim_assembler_suite::circuits::variation::{ActivationMethod, MonteCarlo};

fn main() {
    // The static margins that decide everything.
    let cs = ChargeSharing::ideal(1.0);
    println!("sensing margins (fractions of Vdd):");
    println!(
        "  two-row activation: {:.3}  (levels 0, ½, 1 vs detectors at ¼ and ¾)",
        cs.two_row_margin()
    );
    println!("  TRA:                {:.3}  (levels n/3 vs the ½ sense point)", cs.tra_margin());

    // Monte-Carlo across variation levels.
    println!("\nMonte-Carlo failure rates (5000 trials per cell):");
    let mc = MonteCarlo::new(5000, 7);
    println!("  {:<10} {:>8} {:>8}", "variation", "TRA %", "2-row %");
    for pct in [5.0, 10.0, 15.0, 20.0, 25.0, 30.0] {
        println!(
            "  ±{:<9.0} {:>8.2} {:>8.2}",
            pct,
            mc.error_rate_pct(ActivationMethod::Tra, pct),
            mc.error_rate_pct(ActivationMethod::TwoRow, pct)
        );
    }

    // Transient sanity: the Fig. 3a signature.
    println!("\ntransient XNOR2 (final cell voltage per operand pair):");
    for w in TransientSim::nominal_45nm().xnor_scenarios() {
        println!("  {}: cell -> {:.2} V", w.label, w.final_cell_voltage());
    }
    println!("\nequal operands recharge the cell to Vdd; unequal discharge it — Fig. 3a");
}
