//! Extension beyond the paper: stage 3 (scaffolding), which the paper
//! leaves as future work. Assembles a genome whose middle is unsequencable
//! (never covered by reads), then joins the two resulting contigs with
//! paired reads.
//!
//! ```sh
//! cargo run --example scaffolding
//! ```

use pim_assembler_suite::assembler::{PimAssembler, PimAssemblerConfig};
use pim_assembler_suite::genome::reads::{Read, ReadSimulator};
use pim_assembler_suite::genome::scaffold::{simulate_pairs, Scaffolder};
use pim_assembler_suite::genome::sequence::DnaSequence;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let genome = DnaSequence::random(&mut rng, 6_000);

    // Sequence only the two flanks — a 150 bp hole in the middle.
    let left = genome.subsequence(0, 2_900);
    let right = genome.subsequence(3_050, 2_950);
    let mut reads: Vec<Read> = ReadSimulator::new(90, 20.0).simulate(&left, &mut rng);
    let offset = reads.len();
    reads.extend(ReadSimulator::new(90, 20.0).simulate(&right, &mut rng).into_iter().map(
        |mut r| {
            r.id += offset;
            r
        },
    ));
    println!("sequenced {} reads from two flanks around a 150 bp gap", reads.len());

    // Stages 1–2 on the PIM platform: two contigs expected.
    let mut assembler = PimAssembler::new(PimAssemblerConfig::paper(17).with_hash_subarrays(16));
    let run = assembler.assemble(&reads)?;
    println!("assembly: {}", run.assembly.stats);

    // Stage 3: paired reads spanning the gap vote for the join.
    let pairs = simulate_pairs(&genome, 70, 600, 1_200, &mut rng);
    let scaffolds = Scaffolder::new(17, 3).scaffold(&run.assembly.contigs, &pairs)?;
    println!("\nscaffolds: {}", scaffolds.len());
    for (i, s) in scaffolds.iter().enumerate() {
        println!(
            "  scaffold {}: {} contig(s), estimated gaps {:?}, spans {} bp",
            i,
            s.contigs.len(),
            s.gaps,
            s.span(&run.assembly.contigs)
        );
    }
    Ok(())
}
