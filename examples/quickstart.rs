//! Quickstart: assemble a small synthetic genome on the PIM-Assembler
//! platform and inspect the result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pim_assembler_suite::assembler::{PimAssembler, PimAssemblerConfig};
use pim_assembler_suite::genome::reads::ReadSimulator;
use pim_assembler_suite::genome::sequence::DnaSequence;
use pim_assembler_suite::genome::stats::genome_fraction;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A 5 kbp random reference, sequenced into 101 bp reads at 20x.
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let genome = DnaSequence::random(&mut rng, 5_000);
    let reads = ReadSimulator::new(101, 20.0).simulate(&genome, &mut rng);
    println!("reference: {} bp, {} reads x 101 bp", genome.len(), reads.len());

    // 2. Assemble on the PIM platform (k = 17, the paper's Pd = 2 optimum).
    let mut assembler = PimAssembler::new(PimAssemblerConfig::paper(17).with_hash_subarrays(16));
    let run = assembler.assemble(&reads)?;

    // 3. Results: contigs and how much of the genome they recover.
    println!("\nassembly: {}", run.assembly.stats);
    println!(
        "genome fraction recovered: {:.1}%",
        100.0 * genome_fraction(&genome, &run.assembly.contigs, 17)
    );

    // 4. What the hardware actually did.
    let r = &run.report;
    println!("\ncommands: {}", r.commands);
    println!(
        "stage wall-clock: hashmap {:.2} ms | deBruijn {:.2} ms | traverse {:.2} ms (Pd = {}, {} chains)",
        r.hashmap.wall_s * 1e3,
        r.debruijn.wall_s * 1e3,
        r.traverse.wall_s * 1e3,
        r.pd,
        r.parallel_chains
    );
    println!(
        "power {:.1} W | energy {:.3} J | MBR {:.1}% | RUR {:.1}%",
        r.power_w, r.energy_j, r.mbr_percent, r.rur_percent
    );
    Ok(())
}
