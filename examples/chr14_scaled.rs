//! The paper's chromosome-14 experiment, reproduced at laptop scale and
//! extrapolated to the full 45.7 M-read workload.
//!
//! The paper samples 45,711,162 reads of 101 bp from human chr14 (~9.2 GB)
//! and runs k ∈ {16, 22, 26, 32}. We run the identical per-read pipeline on
//! a scaled synthetic reference (see DESIGN.md §Substitutions), measure the
//! per-k-mer command behaviour exactly, and extrapolate.
//!
//! ```sh
//! cargo run --release --example chr14_scaled
//! ```

use pim_assembler_suite::assembler::{PimAssembler, PimAssemblerConfig};
use pim_assembler_suite::genome::reads::ReadSimulator;
use pim_assembler_suite::genome::sequence::DnaSequence;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("chr14-shaped workload, scaled 4000:1, then extrapolated to paper scale\n");
    let mut rng = ChaCha8Rng::seed_from_u64(14);
    let genome = DnaSequence::random(&mut rng, 22_000);
    let reads = ReadSimulator::new(101, 13.0).simulate(&genome, &mut rng);
    println!("scaled dataset: {} bp reference, {} reads", genome.len(), reads.len());

    println!(
        "\n{:<4} {:>10} {:>10} {:>12} {:>14} {:>12} {:>10}",
        "k", "k-mers", "distinct", "avg probes", "chr14 est (s)", "power (W)", "energy(kJ)"
    );
    for k in [16usize, 22, 26, 32] {
        let mut assembler = PimAssembler::new(PimAssemblerConfig::paper(k).with_hash_subarrays(32));
        let run = assembler.assemble(&reads)?;
        let chr14 = run.report.extrapolate_chr14();
        println!(
            "{:<4} {:>10} {:>10} {:>12.2} {:>14.1} {:>12.1} {:>10.1}",
            k,
            run.report.workload.total_kmers,
            run.report.workload.distinct_kmers,
            run.report.workload.avg_probes_per_kmer,
            chr14.total_s(),
            chr14.power_w,
            chr14.energy_j() / 1000.0
        );
    }
    println!("\npaper reference points: GPU needs ~5x the P-A time and ~7.5x the power (Fig. 9)");
    Ok(())
}
