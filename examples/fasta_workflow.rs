//! File-based workflow: FASTA in → PIM assembly → FASTA out, with error
//! correction in between — the shape of a real command-line assembler run.
//!
//! ```sh
//! cargo run --release --example fasta_workflow
//! ```

use std::fs::File;
use std::io::BufReader;

use pim_assembler_suite::assembler::{PimAssembler, PimAssemblerConfig};
use pim_assembler_suite::genome::correction::ReadCorrector;
use pim_assembler_suite::genome::fasta::{read_fasta, write_fasta, FastaRecord};
use pim_assembler_suite::genome::reads::ReadSimulator;
use pim_assembler_suite::genome::sequence::DnaSequence;
use pim_assembler_suite::genome::stats::genome_fraction;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("pim_assembler_demo");
    std::fs::create_dir_all(&dir)?;

    // 1. Write a reference FASTA.
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let genome = DnaSequence::random(&mut rng, 8_000);
    let ref_path = dir.join("reference.fasta");
    write_fasta(
        File::create(&ref_path)?,
        &[FastaRecord { name: "synthetic_chr 8kb".into(), seq: genome.clone() }],
    )?;
    println!("wrote {}", ref_path.display());

    // 2. Read it back and sequence noisy reads.
    let records = read_fasta(BufReader::new(File::open(&ref_path)?))?;
    let reference = &records[0].seq;
    let mut reads =
        ReadSimulator::new(101, 25.0).with_error_rate(0.003).simulate(reference, &mut rng);
    println!("sequenced {} reads at 0.3% substitution error", reads.len());

    // 3. Spectral error correction (extension beyond the paper).
    let k = 19;
    let stats = ReadCorrector::new(k, 3).correct_reads(&mut reads)?;
    println!(
        "corrected {} bases ({} positions uncorrectable)",
        stats.corrected, stats.uncorrectable
    );

    // 4. Assemble on the PIM platform.
    let mut assembler =
        PimAssembler::new(PimAssemblerConfig::paper(k).with_min_count(2).with_hash_subarrays(32));
    let run = assembler.assemble(&reads)?;
    println!("assembly: {}", run.assembly.stats);
    println!(
        "genome fraction: {:.2}%",
        100.0 * genome_fraction(reference, &run.assembly.contigs, k)
    );

    // 5. Write the contigs FASTA.
    let out_path = dir.join("contigs.fasta");
    let records: Vec<FastaRecord> = run
        .assembly
        .contigs
        .iter()
        .enumerate()
        .map(|(i, c)| FastaRecord {
            name: format!("contig_{i} len={}", c.len()),
            seq: c.sequence().clone(),
        })
        .collect();
    write_fasta(File::create(&out_path)?, &records)?;
    println!("wrote {}", out_path.display());
    Ok(())
}
