//! Compare PIM-Assembler against CPU, GPU, HMC, Ambit, and DRISA on both
//! raw bulk-op throughput (Fig. 3b) and the assembly pipeline (Fig. 9).
//!
//! ```sh
//! cargo run --example platform_comparison
//! ```

use pim_assembler_suite::platforms::assembly_model::{
    AssemblyCostModel, GpuAssemblyModel, PimAssemblyModel,
};
use pim_assembler_suite::platforms::throughput::ThroughputReport;
use pim_assembler_suite::platforms::workload::AssemblyWorkload;

fn main() {
    // Raw bulk-op throughput.
    let report = ThroughputReport::paper_sweep();
    println!("bulk XNOR2 throughput (mean over 2^27..2^29-bit vectors):");
    for name in ["CPU", "GPU", "HMC", "Ambit", "D1", "D3", "P-A"] {
        let t = report.mean_xnor(name).expect("platform present");
        println!("  {:<6} {:>8.0} Gb/s  {}", name, t / 1e9, bar(t / 1e9, 10.0));
    }

    // Assembly pipeline at chr14 scale, k = 16.
    let w = AssemblyWorkload::chr14(16);
    println!("\ngenome assembly, chr14 workload, k = 16:");
    let breakdowns = [
        GpuAssemblyModel::gtx_1080ti().estimate(&w),
        PimAssemblyModel::pim_assembler(2).estimate(&w),
        PimAssemblyModel::ambit(2).estimate(&w),
        PimAssemblyModel::drisa_3t1c(2).estimate(&w),
        PimAssemblyModel::drisa_1t1c(2).estimate(&w),
    ];
    for b in &breakdowns {
        println!(
            "  {:<6} {:>7.1} s @ {:>6.1} W  {}",
            b.name,
            b.total_s(),
            b.power_w,
            bar(b.total_s(), 3.0)
        );
    }
    let pa = &breakdowns[1];
    let gpu = &breakdowns[0];
    println!(
        "\nP-A vs GPU: {:.1}x faster, {:.1}x less power",
        gpu.total_s() / pa.total_s(),
        gpu.power_w / pa.power_w
    );
}

fn bar(value: f64, unit: f64) -> String {
    "#".repeat(((value / unit).round() as usize).clamp(1, 80))
}
