#![warn(missing_docs)]
//! # pim-assembler-suite
//!
//! Umbrella crate of the PIM-Assembler reproduction workspace. It re-exports
//! every member crate so the workspace-level examples and integration tests
//! can reach the whole system through one dependency:
//!
//! * [`dram`] — the processing-in-DRAM substrate (functional + timing/energy),
//! * [`circuits`] — analog behavioral models (transients, variation, area),
//! * [`genome`] — the genome-assembly algorithm toolkit,
//! * [`platforms`] — CPU/GPU/HMC/Ambit/DRISA baseline models,
//! * [`assembler`] — the PIM-Assembler core (mapping, kernels, pipeline),
//! * [`verify`] — differential oracles, trace invariants, fault injection.
//!
//! See `README.md` for a tour and `DESIGN.md` for the paper-to-module map.

pub use pim_assembler as assembler;
pub use pim_circuits as circuits;
pub use pim_dram as dram;
pub use pim_genome as genome;
pub use pim_platforms as platforms;
pub use pim_verify as verify;
