//! Vendored benchmark harness.
//!
//! The build environment has no registry access, so this crate provides
//! the `criterion` API subset the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! [`BenchmarkGroup::bench_with_input`] and [`BenchmarkId`], plus the
//! [`criterion_group!`] / [`criterion_main!`] macros (both the
//! `name/config/targets` and positional forms).
//!
//! Measurement is deliberately simple: a fixed warm-up, then
//! `sample_size` timed samples whose mean, minimum, and standard
//! deviation are printed. There is no plotting, baseline storage, or
//! statistical outlier analysis.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches may use `criterion::black_box`.
pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(30);
const TARGET_SAMPLE: Duration = Duration::from_millis(5);

/// Benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, &mut routine);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        run_benchmark(&full, self.criterion.sample_size, &mut |b: &mut Bencher| routine(b, input));
        self
    }

    /// Runs an unparameterized benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.criterion.sample_size, &mut routine);
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, executed `self.iters` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, routine: &mut F) {
    // Warm up and estimate the per-iteration cost.
    let mut iters = 1u64;
    let mut per_iter;
    let warmup_start = Instant::now();
    loop {
        let mut b = Bencher { iters, ..Bencher::default() };
        routine(&mut b);
        per_iter = b.elapsed.as_secs_f64() / iters as f64;
        if warmup_start.elapsed() >= WARMUP {
            break;
        }
        iters = iters.saturating_mul(2).min(1 << 24);
    }

    let sample_iters = if per_iter > 0.0 {
        ((TARGET_SAMPLE.as_secs_f64() / per_iter).ceil() as u64).clamp(1, 1 << 24)
    } else {
        1 << 16
    };

    let mut times = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters: sample_iters, ..Bencher::default() };
        routine(&mut b);
        times.push(b.elapsed.as_secs_f64() / sample_iters as f64);
    }

    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let var = times.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / times.len() as f64;
    println!(
        "{name:<44} time: [mean {} min {} ±{}] ({sample_size} samples × {sample_iters} iters)",
        fmt_time(mean),
        fmt_time(min),
        fmt_time(var.sqrt()),
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher { iters: 10, ..Bencher::default() };
        b.iter(|| calls += 1);
        assert_eq!(calls, 10);
        assert!(b.elapsed > Duration::ZERO || calls == 10);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("algo", 42);
        assert_eq!(id.label, "algo/42");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }

    #[test]
    fn fmt_time_scales() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
