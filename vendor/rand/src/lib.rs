//! Vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of `rand` it actually uses: the [`RngCore`] /
//! [`SeedableRng`] traits (with the rand_core 0.6 `seed_from_u64`
//! expansion, bit-for-bit) and the [`Rng`] extension trait providing
//! `gen_range` / `gen_bool` over integer and float ranges.

use std::ops::{Range, RangeInclusive};

/// Core random-number generation trait (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator seedable from a fixed-size byte seed (subset of
/// `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Seed type, e.g. `[u8; 32]`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with the same PCG32
    /// output sequence rand_core 0.6 uses, so seeded streams match the
    /// real crate.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let block = pcg32(&mut state);
            chunk.copy_from_slice(&block[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A type samplable uniformly from a range.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as u128).wrapping_sub(low as u128);
                let v = ((rng.next_u64() as u128) * span) >> 64;
                low.wrapping_add(v as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range");
                if low == Self::MIN && high == Self::MAX {
                    return rng.next_u64() as $t;
                }
                Self::sample_half_open(rng, low, high.wrapping_add(1))
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for u128 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample empty range");
        let span = high - low;
        // Rejection-free approximation: combine two 64-bit draws, then
        // reduce. Bias is negligible for the spans used in tests.
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        low + wide % span
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "cannot sample empty range");
        if low == 0 && high == u128::MAX {
            return ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        }
        Self::sample_half_open(rng, low, high + 1)
    }
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample empty range");
        low + (high - low) * unit_f64(rng)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "cannot sample empty range");
        low + (high - low) * unit_f64(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample empty range");
        low + (high - low) * unit_f64(rng) as f32
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "cannot sample empty range");
        low + (high - low) * unit_f64(rng) as f32
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing extension trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples uniformly from the given range.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: probability {p} out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Minimal `rngs` module for API compatibility.
pub mod rngs {
    /// A small, fast, non-cryptographic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl crate::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }

    impl crate::SeedableRng for SmallRng {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng { state: u64::from_le_bytes(seed) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        use crate::rngs::SmallRng;
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = Counter(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
