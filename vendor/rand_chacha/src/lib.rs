//! Vendored ChaCha8 random number generator.
//!
//! A genuine 8-round ChaCha keystream generator exposing the
//! `rand_chacha::ChaCha8Rng` API subset this workspace uses
//! (`SeedableRng` with a 32-byte seed plus word-stream output). The
//! block function follows RFC 7539 with the round count reduced to 8,
//! a 64-bit block counter in words 12–13 and a 64-bit stream id in
//! words 14–15, matching the `rand_chacha` crate's layout.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha stream cipher with 8 rounds, exposed as an RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buffer: [u32; BLOCK_WORDS],
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; BLOCK_WORDS];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let mut working = state;
        for _ in 0..4 {
            // One double round: 4 column rounds then 4 diagonal rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buffer.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    /// Selects an independent keystream (word 14–15 of the state).
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.index = BLOCK_WORDS; // force refill
    }

    /// The current stream id.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng { key, counter: 0, stream: 0, buffer: [0; BLOCK_WORDS], index: BLOCK_WORDS }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn quarter_round_matches_rfc7539_vector() {
        // RFC 7539 §2.1.1 test vector.
        let mut s = [0u32; BLOCK_WORDS];
        s[0] = 0x1111_1111;
        s[1] = 0x0102_0304;
        s[2] = 0x9b8d_6f43;
        s[3] = 0x0123_4567;
        quarter_round(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0xea2a_92f4);
        assert_eq!(s[1], 0xcb1c_f8ce);
        assert_eq!(s[2], 0x4581_472e);
        assert_eq!(s[3], 0x5881_c4bb);
    }

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = ChaCha8Rng::seed_from_u64(13);
        let mut b = ChaCha8Rng::seed_from_u64(13);
        let mut c = ChaCha8Rng::seed_from_u64(14);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn stream_selection_changes_output() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        b.set_stream(7);
        assert_eq!(b.get_stream(), 7);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut ones = 0u32;
        for _ in 0..1024 {
            ones += rng.next_u64().count_ones();
        }
        let total = 1024 * 64;
        let frac = ones as f64 / total as f64;
        assert!((0.48..0.52).contains(&frac), "bit bias: {frac}");
    }

    #[test]
    fn works_with_rng_extension_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..100 {
            let v: usize = rng.gen_range(0..4);
            assert!(v < 4);
            let _ = rng.gen_bool(0.5);
        }
    }
}
