//! Vendored property-testing harness.
//!
//! The build environment has no registry access, so this crate provides
//! the `proptest` API subset the workspace's test suites use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`), the
//! [`prop_assert!`] / [`prop_assert_eq!`] assertions, range and
//! `any::<T>()` strategies, `prop_map`, and `collection::vec`.
//!
//! Differences from the real crate: inputs are generated from a
//! deterministic per-test ChaCha8 stream (seeded from the test name), and
//! failing cases are reported with their case index instead of being
//! shrunk. Property semantics (a failing predicate fails the test) are
//! identical.

use std::ops::{Range, RangeInclusive};

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Deterministic source of test-case randomness.
#[derive(Debug, Clone)]
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// A generator for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the test name picks the key; the case index picks
        // the ChaCha stream, so cases are independent.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(h);
        rng.set_stream(case);
        TestRng(rng)
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, f64);

/// Strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary: Sized {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// Strategy for any value of `T` (returned by [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max_inclusive: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// Number of cases to run per property.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg); $($rest)*);
    };
    (@with_config ($cfg:expr); $(
        #[test]
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!("property {} failed at case {case}: {message}", stringify!($name));
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 0);
        for _ in 0..200 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = crate::TestRng::for_case("vec", 1);
        let s = collection::vec(any::<bool>(), 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let s = collection::vec(0u8..255, 4usize);
        let a = s.generate(&mut crate::TestRng::for_case("t", 3));
        let b = s.generate(&mut crate::TestRng::for_case("t", 3));
        let c = s.generate(&mut crate::TestRng::for_case("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(xs in collection::vec(any::<u64>(), 0..8), k in 1usize..=4) {
            let doubled: Vec<u64> = xs.iter().map(|x| x.wrapping_mul(2)).collect();
            prop_assert_eq!(doubled.len(), xs.len());
            prop_assert!((1..=4).contains(&k), "k out of range: {}", k);
        }

        #[test]
        fn mapped_strategy_applies_function(v in (0usize..10).prop_map(|x| x * 3)) {
            prop_assert!(v % 3 == 0);
            prop_assert!(v < 30);
        }
    }
}
